"""Tests for repro.tga.spacetree."""

import pytest

from repro.addr import parse_address
from repro.addr.nybbles import differing_positions
from repro.tga import SpaceTree, SpaceTreeLeaf, expanded_values, leaf_candidates


def A(text: str) -> int:
    return parse_address(text)


class TestExpandedValues:
    def test_observed_first(self):
        values = expanded_values({3, 5})
        assert values[:2] == [3, 5]

    def test_gap_fill(self):
        values = expanded_values({1, 4})
        assert 2 in values and 3 in values

    def test_extrapolation(self):
        values = expanded_values({4, 5})
        assert 6 in values and 7 in values and 3 in values

    def test_bounds_respected(self):
        values = expanded_values({0xF})
        assert all(0 <= v <= 0xF for v in values)
        values = expanded_values({0})
        assert all(0 <= v <= 0xF for v in values)

    def test_no_duplicates(self):
        values = expanded_values({1, 2, 3})
        assert len(values) == len(set(values))


class TestSpaceTree:
    def test_single_seed_single_leaf(self):
        tree = SpaceTree([A("2001:db8::1")])
        assert len(tree) == 1
        assert tree.leaves[0].variable_dims == []

    def test_identical_seeds_deduplicated(self):
        tree = SpaceTree([A("2001:db8::1")] * 5)
        assert len(tree.leaves[0].seeds) == 1

    def test_small_cluster_stays_one_leaf(self):
        seeds = [A(f"2001:db8::{i}") for i in range(1, 6)]
        tree = SpaceTree(seeds, max_leaf_seeds=12)
        assert len(tree) == 1
        assert tree.leaves[0].variable_dims == [31]

    def test_splits_when_over_limit(self):
        seeds = [A(f"2001:db8:{i}::1") for i in range(1, 10)] + [
            A(f"2400:1:{i}::1") for i in range(1, 10)
        ]
        tree = SpaceTree(seeds, max_leaf_seeds=10)
        assert len(tree) >= 2

    def test_leftmost_splits_on_first_varying(self):
        seeds = [A(f"2001:db8::{i}") for i in range(16)] + [
            A(f"2a00:db8::{i}") for i in range(16)
        ]
        tree = SpaceTree(seeds, strategy="leftmost", max_leaf_seeds=4)
        # After the first split, the two /16 families must be separate.
        for leaf in tree.leaves:
            top_nybbles = {seed >> 124 for seed in leaf.seeds}
            assert len(top_nybbles) == 1

    def test_entropy_strategy_builds(self):
        seeds = [A(f"2001:db8:{i}::{j}") for i in range(4) for j in range(1, 9)]
        tree = SpaceTree(seeds, strategy="entropy", max_leaf_seeds=4)
        assert sum(len(leaf.seeds) for leaf in tree.leaves) == len(set(seeds))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SpaceTree([1], strategy="magic")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            SpaceTree([])

    def test_leaves_partition_seeds(self):
        seeds = [A(f"2001:db8:{i:x}::{j:x}") for i in range(8) for j in range(1, 20)]
        tree = SpaceTree(seeds, max_leaf_seeds=6)
        collected = sorted(
            seed
            for leaf in tree.leaves
            if not leaf.is_internal
            for seed in leaf.seeds
        )
        assert collected == sorted(set(seeds))

    def test_internal_regions_widen_reach(self):
        """Split nodes become generalisation regions spanning subnets."""
        seeds = [A(f"2001:db8:{i:x}::{j:x}") for i in range(4) for j in range(1, 20)]
        tree = SpaceTree(seeds, max_leaf_seeds=6)
        internals = [leaf for leaf in tree.leaves if leaf.is_internal]
        assert internals
        assert any(len(leaf.variable_dims) >= 3 for leaf in internals)

    def test_internal_regions_can_be_disabled(self):
        seeds = [A(f"2001:db8:{i:x}::{j:x}") for i in range(4) for j in range(1, 20)]
        tree = SpaceTree(seeds, max_leaf_seeds=6, internal_regions=False)
        assert not any(leaf.is_internal for leaf in tree.leaves)

    def test_leaves_by_density_ordering(self):
        dense = [A(f"2001:db8::{i:x}") for i in range(1, 13)]
        sparse = [A("2400:cafe::1"), A("2600:beef:1234:5678:9abc:def0:1111:2222")]
        tree = SpaceTree(dense + sparse, max_leaf_seeds=20)
        ranked = tree.leaves_by_density()
        assert ranked[0].density >= ranked[-1].density


class TestLeafCandidates:
    def test_never_emits_seeds(self):
        seeds = [A(f"2001:db8::{i}") for i in range(1, 9)]
        leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=[31])
        emitted = list(leaf_candidates(leaf))
        assert not set(emitted) & set(seeds)

    def test_no_duplicates(self):
        seeds = [A("2001:db8::1"), A("2001:db8::3")]
        leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=[31])
        emitted = list(leaf_candidates(leaf))
        assert len(emitted) == len(set(emitted))

    def test_gap_fill_candidate_present(self):
        seeds = [A("2001:db8::1"), A("2001:db8::4")]
        leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=[31])
        emitted = set(leaf_candidates(leaf))
        assert A("2001:db8::2") in emitted
        assert A("2001:db8::3") in emitted

    def test_extrapolation_candidate_present(self):
        seeds = [A("2001:db8::1"), A("2001:db8::2")]
        leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=[31])
        assert A("2001:db8::3") in set(leaf_candidates(leaf))

    def test_degenerate_leaf_expands_tail(self):
        leaf = SpaceTreeLeaf(seeds=[A("2001:db8::1")], variable_dims=[])
        emitted = list(leaf_candidates(leaf))
        assert A("2001:db8::2") in emitted

    def test_multi_dim_combination(self):
        seeds = [A("2001:db8:1::1"), A("2001:db8:2::2")]
        leaf = SpaceTreeLeaf(
            seeds=seeds, variable_dims=differing_positions(seeds)
        )
        emitted = set(leaf_candidates(leaf, max_level=2))
        # Cross combination: subnet of one seed with IID of the other.
        assert A("2001:db8:1::2") in emitted
        assert A("2001:db8:2::1") in emitted

    def test_level_one_before_level_two(self):
        seeds = [A("2001:db8:1::1"), A("2001:db8:2::2")]
        leaf = SpaceTreeLeaf(
            seeds=seeds, variable_dims=differing_positions(seeds)
        )
        emitted = list(leaf_candidates(leaf, max_level=2))
        single_dim = emitted.index(A("2001:db8:2::1"))
        # A two-dim change (new subnet AND new IID) must come later than
        # at least one single-dim change.
        double_change = emitted.index(A("2001:db8:3::3"))
        assert single_dim < double_change

    def test_deterministic(self):
        seeds = [A("2001:db8::1"), A("2001:db8::5")]
        leaf_a = SpaceTreeLeaf(seeds=list(seeds), variable_dims=[31])
        leaf_b = SpaceTreeLeaf(seeds=list(seeds), variable_dims=[31])
        assert list(leaf_candidates(leaf_a)) == list(leaf_candidates(leaf_b))

    def test_value_sets_cached(self):
        leaf = SpaceTreeLeaf(seeds=[A("2001:db8::1")], variable_dims=[])
        assert leaf.value_sets() is leaf.value_sets()

    def test_density_positive(self):
        leaf = SpaceTreeLeaf(seeds=[A("2001:db8::1")], variable_dims=[])
        assert leaf.density > 0
        assert leaf.span_score() > 0
