"""Prepared-model cache: correctness, bounds and bit-identity.

Three layers of guarantees:

* :class:`repro.tga.ModelCache` unit behaviour — hit/miss/eviction
  accounting, LRU order, cost budget, the disabled escape hatch and the
  ``use_model_cache`` scoping contract.
* The rewritten :class:`repro.tga.SpaceTree` against an embedded
  reference implementation (the pre-optimisation algorithm, transcribed
  verbatim) on randomized seed sets: identical leaves, value sets,
  densities and candidate streams.
* End-to-end bit-identity: every TGA prepared and driven with the cache
  off, cold and warm produces identical proposal/feedback streams, and a
  telemetry-instrumented grid records identical traces once the
  sanctioned ``tga.model_cache.*`` / ``cached`` markers are stripped.
"""

import math
import random

import pytest

from repro.addr import ADDRESS_NYBBLES, parse_address
from repro.addr.nybbles import differing_positions, get_nybble, set_nybble
from repro.experiments import ExecutionPolicy, GridSpec, Study, run_grid
from repro.experiments.parallel import resolve_workers
from repro.internet import InternetConfig, Port
from repro.telemetry import (
    SANCTIONED_VARIANT_PREFIXES,
    MemorySink,
    Telemetry,
)
from repro.tga import (
    ALL_TGA_NAMES,
    TGA_ALIASES,
    ModelCache,
    SpaceTree,
    cached_space_tree,
    canonical_tga_name,
    create_tga,
    expanded_values,
    leaf_candidates,
    seed_fingerprint,
    use_model_cache,
)

SALT = 0xA11CE


def A(text: str) -> int:
    return parse_address(text)


# ---------------------------------------------------------------------------
# ModelCache unit behaviour
# ---------------------------------------------------------------------------


class TestModelCache:
    def test_miss_then_hit_returns_same_object(self):
        cache = ModelCache()
        built = []

        def builder():
            artifact = object()
            built.append(artifact)
            return artifact

        first = cache.get_or_build("kind", 1, (), builder)
        second = cache.get_or_build("kind", 1, (), builder)
        assert first is second
        assert len(built) == 1
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_distinct_keys_do_not_collide(self):
        cache = ModelCache()
        a = cache.get_or_build("kind", 1, ("x",), object)
        b = cache.get_or_build("kind", 1, ("y",), object)
        c = cache.get_or_build("other", 1, ("x",), object)
        d = cache.get_or_build("kind", 2, ("x",), object)
        assert len({id(a), id(b), id(c), id(d)}) == 4
        assert cache.stats.misses == 4

    def test_entry_count_eviction_is_lru(self):
        cache = ModelCache(max_entries=2)
        cache.get_or_build("k", 1, (), lambda: "one")
        cache.get_or_build("k", 2, (), lambda: "two")
        cache.get_or_build("k", 1, (), lambda: "one")  # touch 1: now MRU
        cache.get_or_build("k", 3, (), lambda: "three")  # evicts 2
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        cache.get_or_build("k", 1, (), pytest.fail)  # still cached
        before = cache.stats.misses
        cache.get_or_build("k", 2, (), lambda: "two")  # was evicted
        assert cache.stats.misses == before + 1

    def test_cost_budget_eviction(self):
        cache = ModelCache(max_cost=100)
        cache.get_or_build("k", 1, (), object, cost=60)
        cache.get_or_build("k", 2, (), object, cost=60)  # 120 > 100: drop 1
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        assert cache.total_cost == 60

    def test_newest_entry_never_evicted(self):
        cache = ModelCache(max_cost=10)
        oversized = cache.get_or_build("k", 1, (), object, cost=1_000)
        # Over budget, but the sole (newest) entry must survive so it
        # can still be shared within the cell that built it.
        assert len(cache) == 1
        assert cache.get_or_build("k", 1, (), pytest.fail) is oversized

    def test_clear_drops_entries_keeps_stats(self):
        cache = ModelCache()
        cache.get_or_build("k", 1, (), object)
        cache.get_or_build("k", 1, (), object)
        cache.clear()
        assert len(cache) == 0
        assert cache.total_cost == 0
        assert cache.stats.hits == 1  # history preserved
        before = cache.stats.misses
        cache.get_or_build("k", 1, (), object)
        assert cache.stats.misses == before + 1

    def test_disabled_cache_builds_fresh_and_counts_nothing(self):
        cache = ModelCache(enabled=False)
        a = cache.get_or_build("k", 1, (), object)
        b = cache.get_or_build("k", 1, (), object)
        assert a is not b
        assert len(cache) == 0
        assert cache.stats.as_dict() == {"hits": 0, "misses": 0, "evictions": 0}

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ModelCache(max_entries=0)
        with pytest.raises(ValueError):
            ModelCache(max_cost=0)

    def test_use_model_cache_scopes_and_restores(self):
        from repro.tga import get_model_cache

        outer = get_model_cache()
        private = ModelCache()
        with use_model_cache(private) as active:
            assert active is private
            assert get_model_cache() is private
            with use_model_cache(None):  # pass-through
                assert get_model_cache() is private
        assert get_model_cache() is outer

    def test_seed_fingerprint_is_order_and_length_sensitive(self):
        assert seed_fingerprint([1, 2, 3]) != seed_fingerprint([3, 2, 1])
        assert seed_fingerprint([1, 2]) != seed_fingerprint([1, 2, 3])
        assert seed_fingerprint([5, 7]) == seed_fingerprint([5, 7])

    def test_cached_space_tree_shares_one_build(self):
        seeds = sorted({A(f"2001:db8::{i:x}") for i in range(1, 40)})
        with use_model_cache(ModelCache()) as cache:
            first = cached_space_tree(seeds, strategy="leftmost")
            second = cached_space_tree(seeds, strategy="leftmost")
            other = cached_space_tree(seeds, strategy="entropy")
        assert first is second
        assert other is not first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2


# ---------------------------------------------------------------------------
# SpaceTree vs the pre-optimisation reference implementation
# ---------------------------------------------------------------------------

_REF_ENTROPY_SAMPLE = 2048


def _reference_choose_dim(
    seeds: list[int], variable: list[int], strategy: str
) -> int:
    """``SpaceTree._choose_dim`` as it was before the fast path."""
    if strategy == "leftmost":
        return variable[0]
    if len(seeds) > _REF_ENTROPY_SAMPLE:
        stride = len(seeds) // _REF_ENTROPY_SAMPLE
        sample = seeds[::stride]
    else:
        sample = seeds
    best_dim = variable[0]
    best_entropy = float("inf")
    total = len(sample)
    for dim in variable:
        shift = (ADDRESS_NYBBLES - 1 - dim) * 4
        counts: dict[int, int] = {}
        for seed in sample:
            value = (seed >> shift) & 0xF
            counts[value] = counts.get(value, 0) + 1
        entropy = 0.0
        for count in counts.values():
            p = count / total
            entropy -= p * math.log2(p)
        if 0.0 < entropy < best_entropy:
            best_entropy = entropy
            best_dim = dim
    return best_dim


def _reference_build(tree: SpaceTree, seeds: list[int]) -> list[dict]:
    """Rebuild ``tree``'s leaf list with the reference algorithm.

    Returns plain dicts (seeds/dims/depth/is_internal) in emission
    order, mirroring ``SpaceTree._build`` before the packed-row rewrite.
    """
    leaves: list[dict] = []

    def build(seeds: list[int], depth: int) -> None:
        variable = differing_positions(seeds)
        if (
            len(seeds) <= tree.max_leaf_seeds
            or len(variable) <= 2
            or depth >= tree.max_depth
        ):
            leaves.append(
                {"seeds": seeds, "dims": variable, "depth": depth, "internal": False}
            )
            return
        if (
            tree.internal_regions
            and len(seeds) <= tree.max_internal_seeds
            and len(variable) <= tree.max_internal_dims
        ):
            leaves.append(
                {"seeds": seeds, "dims": variable, "depth": depth, "internal": True}
            )
        dim = _reference_choose_dim(seeds, variable, tree.strategy)
        buckets: dict[int, list[int]] = {}
        for seed in seeds:
            buckets.setdefault(get_nybble(seed, dim), []).append(seed)
        if len(buckets) <= 1:
            leaves.append(
                {"seeds": seeds, "dims": variable, "depth": depth, "internal": False}
            )
            return
        for value in sorted(buckets):
            build(buckets[value], depth + 1)

    build(sorted(set(seeds)), depth=0)
    return leaves


def _reference_candidates(leaf, limit: int) -> list[int]:
    """``leaf_candidates`` as written before the mask fast path."""
    import itertools

    dims = sorted(leaf.effective_dims, reverse=True)
    value_sets = leaf.value_sets()
    emitted = set(leaf.seeds)
    out: list[int] = []
    for level in range(1, min(3, len(dims)) + 1):
        for combo in itertools.combinations(dims, level):
            combo_values = [value_sets[dim] for dim in combo]
            for base in leaf.seeds:
                for assignment in itertools.product(*combo_values):
                    address = base
                    for dim, value in zip(combo, assignment):
                        address = set_nybble(address, dim, value)
                    if address not in emitted:
                        emitted.add(address)
                        out.append(address)
                        if len(out) >= limit:
                            return out
    return out


def _random_seed_sets() -> list[tuple[str, list[int]]]:
    """Deterministic pseudo-random seed families of varied shape."""
    rng = random.Random(0x5EED5)
    sets: list[tuple[str, list[int]]] = []
    # Dense /64s with small IIDs (the structured common case).
    sets.append(
        (
            "dense64",
            [
                (0x20010DB8 << 96) | (net << 64) | iid
                for net in range(4)
                for iid in rng.sample(range(1, 600), 80)
            ],
        )
    )
    # Scattered across many /32s (wide, shallow tree).
    sets.append(
        (
            "scattered",
            [
                (rng.randrange(0x20000000, 0x2A000000) << 96)
                | rng.getrandbits(64)
                for _ in range(300)
            ],
        )
    )
    # SLAAC-like IIDs (high-entropy low halves).
    sets.append(
        (
            "slaac",
            [
                (0x2A000145 << 96)
                | (rng.randrange(0, 8) << 64)
                | (rng.getrandbits(24) << 40)
                | (0xFFFE << 24)
                | rng.getrandbits(24)
                for _ in range(400)
            ],
        )
    )
    # Tiny degenerate sets down to a single seed.
    sets.append(("single", [(0x20010DB8 << 96) | 0x42]))
    sets.append(
        ("pair", [(0x20010DB8 << 96) | 0x42, (0x20010DB8 << 96) | 0x1042])
    )
    # Large stride-sampled entropy case (> _ENTROPY_SAMPLE seeds).
    sets.append(
        (
            "large",
            [
                (0x24008500 << 96)
                | (rng.randrange(0, 12) << 80)
                | (rng.randrange(0, 3) << 64)
                | rng.randrange(0, 1 << 20)
                for _ in range(5000)
            ],
        )
    )
    return sets


class TestSpaceTreeMatchesReference:
    @pytest.mark.parametrize("strategy", ["leftmost", "entropy"])
    @pytest.mark.parametrize(
        "name,seeds",
        _random_seed_sets(),
        ids=[name for name, _ in _random_seed_sets()],
    )
    def test_leaves_and_streams_match(self, strategy, name, seeds):
        tree = SpaceTree(list(seeds), strategy=strategy)
        reference = _reference_build(tree, list(seeds))

        assert len(tree.leaves) == len(reference)
        for leaf, ref in zip(tree.leaves, reference):
            assert leaf.seeds == ref["seeds"]
            assert leaf.variable_dims == ref["dims"]
            assert leaf.depth == ref["depth"]
            assert leaf.is_internal == ref["internal"]
            # Expanded value sets and the density ranking signal must be
            # bit-identical (floats included: same op order).
            assert leaf.value_sets() == {
                dim: expanded_values(
                    {get_nybble(seed, dim) for seed in leaf.seeds}
                )
                for dim in leaf.effective_dims
            }
        # Candidate streams: compare a prefix of every leaf's stream.
        for leaf in tree.leaves[:12]:
            expected = _reference_candidates(leaf, limit=300)
            actual = []
            for address in leaf_candidates(leaf):
                actual.append(address)
                if len(actual) >= len(expected):
                    break
            assert actual == expected


# ---------------------------------------------------------------------------
# Bit-identity across cache off / cold / warm for every TGA
# ---------------------------------------------------------------------------

_ALL_GENERATORS = tuple(ALL_TGA_NAMES) + ("addrminer",)


def _property_datasets() -> list[tuple[str, list[int]]]:
    rng = random.Random(0xD00D)
    datasets: list[tuple[str, list[int]]] = []
    datasets.append(
        (
            "structured",
            [A(f"2001:db8:0:1::{i:x}") for i in range(1, 25)]
            + [A(f"2001:db8:0:2::{i:x}") for i in range(1, 25)]
            + [A("2400:cb00:1::1"), A("2600:9000:1::1"), A("2a00:1450:1::1")],
        )
    )
    datasets.append(
        (
            "lowbyte",
            [
                (0x20010DB8 << 96) | (net << 64) | iid
                for net in range(6)
                for iid in range(1, 30)
            ],
        )
    )
    datasets.append(
        (
            "slaac",
            [
                (0x2A000145 << 96)
                | (rng.randrange(0, 4) << 64)
                | (rng.getrandbits(24) << 40)
                | (0xFFFE << 24)
                | rng.getrandbits(24)
                for _ in range(160)
            ],
        )
    )
    datasets.append(
        (
            "scattered",
            [
                (rng.randrange(0x20000000, 0x28000000) << 96)
                | rng.randrange(0, 1 << 16)
                for _ in range(200)
            ],
        )
    )
    datasets.append(
        (
            "mixed",
            [
                (0x26001700 << 96) | (s << 80) | rng.randrange(0, 4096)
                for s in range(3)
                for _ in range(60)
            ]
            + [(0x20014860 << 96) | (i << 64) | 0x1 for i in range(20)],
        )
    )
    return datasets


def _drive(name: str, seeds: list[int], cache: ModelCache):
    """Prepare + two proposal rounds with feedback, under ``cache``."""
    with use_model_cache(cache):
        tga = create_tga(name, salt=SALT)
        tga.prepare(sorted(set(seeds)))
        first = tga.propose_batch(200)
        tga.feedback({address: address % 3 == 0 for address in first})
        second = tga.propose_batch(200)
    return first, second


class TestCacheBitIdentity:
    """Cache off, cold and warm must be indistinguishable in output."""

    @pytest.mark.parametrize("dataset", _property_datasets(), ids=lambda d: d[0])
    @pytest.mark.parametrize("name", _ALL_GENERATORS)
    def test_streams_identical_off_cold_warm(self, name, dataset):
        _, seeds = dataset
        off = _drive(name, seeds, ModelCache(enabled=False))
        cold = _drive(name, seeds, ModelCache())
        warm_cache = ModelCache()
        _drive(name, seeds, warm_cache)  # populate
        assert warm_cache.stats.misses > 0, name
        warm = _drive(name, seeds, warm_cache)
        assert warm_cache.stats.hits > 0, name
        assert off == cold == warm


def _strip_sanctioned(events: list[dict], snapshot: dict) -> tuple:
    """Drop the markers sanctioned to differ between cache variants."""

    def clean(mapping: dict) -> dict:
        out = {}
        for key, value in mapping.items():
            if key == "cached":
                continue
            if key == "counters" and isinstance(value, dict):
                value = {
                    name: count
                    for name, count in value.items()
                    if not name.startswith(SANCTIONED_VARIANT_PREFIXES)
                }
            out[key] = value
        return out

    return [clean(event) for event in events], clean(snapshot)


class TestCachedGridTraces:
    """A telemetry-instrumented grid is trace-identical off/cold/warm."""

    CONFIG = InternetConfig.tiny
    BUDGET = 150

    def _grid(self, cache: ModelCache):
        study = Study(
            config=self.CONFIG(master_seed=97),
            budget=self.BUDGET,
            round_size=self.BUDGET // 2,
        )
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6tree", "eip"),
            ports=(Port.ICMP,),
            budget=self.BUDGET,
        )
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink])
        with use_model_cache(cache):
            results = run_grid(study, spec, policy=ExecutionPolicy(telemetry=telemetry))
        telemetry.close()
        return results, sink

    def test_results_and_traces_identical(self):
        off_results, off_sink = self._grid(ModelCache(enabled=False))
        cold_cache = ModelCache()
        cold_results, cold_sink = self._grid(cold_cache)
        assert cold_cache.stats.misses > 0
        warm_results, warm_sink = self._grid(cold_cache)  # now warm
        assert cold_cache.stats.hits > 0

        for key in off_results.runs:
            assert off_results.runs[key] == cold_results.runs[key]
            assert off_results.runs[key] == warm_results.runs[key]

        off = _strip_sanctioned(off_sink.events, off_sink.snapshot)
        cold = _strip_sanctioned(cold_sink.events, cold_sink.snapshot)
        warm = _strip_sanctioned(warm_sink.events, warm_sink.snapshot)
        assert off == cold == warm

    def test_cold_traces_reproduce_exactly(self):
        """Two cold runs (fresh caches) are byte-identical, markers
        included — the determinism property the CI trace gate relies on."""
        first_results, first_sink = self._grid(ModelCache())
        second_results, second_sink = self._grid(ModelCache())
        assert first_results.runs == second_results.runs
        assert first_sink.events == second_sink.events
        assert first_sink.snapshot == second_sink.snapshot


# ---------------------------------------------------------------------------
# Aliases and worker resolution
# ---------------------------------------------------------------------------


class TestAliases:
    @pytest.mark.parametrize("name", _ALL_GENERATORS)
    def test_canonical_names_round_trip(self, name):
        assert canonical_tga_name(name) == name
        assert create_tga(name, salt=SALT).name == name

    @pytest.mark.parametrize("alias,target", sorted(TGA_ALIASES.items()))
    def test_documented_aliases_resolve(self, alias, target):
        assert canonical_tga_name(alias) == target
        assert create_tga(alias, salt=SALT).name == target

    def test_resolution_is_case_insensitive(self):
        assert canonical_tga_name("6Tree") == "6tree"
        assert canonical_tga_name("Entropy_IP") == "eip"

    def test_unknown_name_raises_with_roster(self):
        with pytest.raises(KeyError, match="unknown TGA 'zmap6'"):
            canonical_tga_name("zmap6")

    def test_alias_runs_share_the_study_cache(self):
        study = Study(
            config=InternetConfig.tiny(master_seed=11),
            budget=120,
            round_size=60,
        )
        dataset = study.constructions.all_active
        first = study.run("entropy_ip", dataset, Port.ICMP)
        second = study.run("eip", dataset, Port.ICMP)
        assert first is second
        assert first.tga_name == "eip"


class TestResolveWorkers:
    def test_none_and_ints_pass_through(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(7, 3) == 7

    def test_auto_picks_min_of_cpus_and_cells(self, monkeypatch):
        import repro.experiments.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert resolve_workers("auto", 3) == 3
        assert resolve_workers("auto", 100) == 8

    def test_auto_falls_back_to_serial_on_one_cpu(self, monkeypatch):
        import repro.experiments.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert resolve_workers("auto", 64) == 1
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert resolve_workers("auto", 64) == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("fast", 4)
        with pytest.raises(ValueError):
            resolve_workers(0, 4)
