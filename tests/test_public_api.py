"""Public API surface checks: exports exist, __all__ is honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.addr",
    "repro.asdb",
    "repro.internet",
    "repro.scanner",
    "repro.dealias",
    "repro.datasets",
    "repro.preprocess",
    "repro.tga",
    "repro.metrics",
    "repro.experiments",
    "repro.analysis",
    "repro.reporting",
    "repro.telemetry",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    """Every name in __all__ must actually exist on the package."""
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__)), package_name


class TestTopLevelSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_names(self):
        """The names the README quickstart uses are all importable."""
        from repro import (  # noqa: F401
            ALL_PORTS,
            ALL_TGA_NAMES,
            DealiasMode,
            InternetConfig,
            Port,
            Scanner,
            SimulatedInternet,
            Study,
            create_tga,
        )

    def test_cli_module_runs(self):
        from repro.cli import build_parser

        parser = build_parser()
        commands = {
            action.dest
            for action in parser._subparsers._group_actions[0].choices.values()  # type: ignore[union-attr]
            for action in []
        }
        # The parser exposes all documented subcommands.
        choices = parser._subparsers._group_actions[0].choices  # type: ignore[union-attr]
        assert {
            "describe",
            "sources",
            "run",
            "rq1a",
            "rq1b",
            "rq2",
            "rq3",
            "rq4",
            "overlap",
            "convergence",
            "recommend",
            "report",
        } <= set(choices)

    def test_docstrings_everywhere(self):
        """Every public module and exported class/function is documented."""
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            assert package.__doc__, package_name
            for name in package.__all__:
                obj = getattr(package, name)
                if callable(obj) or isinstance(obj, type):
                    assert getattr(obj, "__doc__", None), f"{package_name}.{name}"
