"""Tests for repro.metrics.characterize (Table 6 machinery)."""

import pytest

from repro.metrics import characterize_ases


class TestCharacterizeASes:
    def test_top_shares(self, internet):
        regions = [r for r in internet.regions[:3]]
        addresses = (
            [regions[0].address_of(i) for i in range(6)]
            + [regions[1].address_of(i) for i in range(3)]
            + [regions[2].address_of(i) for i in range(1)]
        )
        # Regions may share an AS; compute expectations from the registry.
        result = characterize_ases(addresses, internet.registry, top_n=3)
        assert result.total_addresses == 10
        assert result.top[0].share >= result.top[-1].share
        assert sum(entry.share for entry in result.top) <= 1.0 + 1e-9

    def test_top_n_limit(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:20]]
        result = characterize_ases(addresses, internet.registry, top_n=2)
        assert len(result.top) <= 2

    def test_total_ases(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:30]]
        expected = len(internet.registry.ases_of(addresses))
        result = characterize_ases(addresses, internet.registry)
        assert result.total_ases == expected

    def test_empty_population(self, internet):
        result = characterize_ases([], internet.registry)
        assert result.top == ()
        assert result.total_ases == 0
        assert result.total_addresses == 0

    def test_org_metadata_attached(self, internet):
        region = internet.regions[0]
        result = characterize_ases([region.address_of(1)], internet.registry)
        entry = result.top[0]
        info = internet.registry.info(region.asn)
        assert entry.name == info.name
        assert entry.org_type == info.org_type
        assert entry.country == info.country
        assert entry.share == pytest.approx(1.0)

    def test_org_type_shares(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:10]]
        result = characterize_ases(addresses, internet.registry)
        shares = result.org_type_shares()
        assert all(0 <= value <= 1 for value in shares.values())
