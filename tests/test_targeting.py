"""Tests for population-targeted seeding (repro.experiments.targeting)."""

import pytest

from repro.asdb import OrgType
from repro.experiments import run_targeted, targeted_seeds
from repro.internet import Port

DATACENTER = (OrgType.CLOUD, OrgType.HOSTING, OrgType.CDN)


class TestTargetedSeeds:
    def test_subset_of_all_active(self, study):
        seeds = targeted_seeds(study, DATACENTER)
        assert seeds.addresses <= study.constructions.all_active.addresses

    def test_only_targeted_orgs(self, study):
        seeds = targeted_seeds(study, DATACENTER)
        registry = study.internet.registry
        for address in list(seeds.addresses)[:200]:
            asn = study.internet.asn_of(address)
            assert registry.info(asn).org_type in DATACENTER

    def test_name_stable(self, study):
        seeds = targeted_seeds(study, (OrgType.ISP,))
        assert seeds.name == "targeted-isp"

    def test_custom_name(self, study):
        seeds = targeted_seeds(study, DATACENTER, name="dc")
        assert seeds.name == "targeted-dc"

    def test_disjoint_targets_disjoint_seeds(self, study):
        dc = targeted_seeds(study, DATACENTER)
        eyeball = targeted_seeds(study, (OrgType.ISP, OrgType.MOBILE))
        assert not dc.addresses & eyeball.addresses


class TestRunTargeted:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_targeted(study, DATACENTER, tga_name="6tree", budget=600)

    def test_purity_bounds(self, result):
        assert 0.0 <= result.purity <= 1.0
        assert 0.0 <= result.baseline_purity <= 1.0

    def test_targeting_improves_purity(self, result):
        """Seeding only datacenter networks concentrates discovery there."""
        assert result.purity >= result.baseline_purity

    def test_purity_gain(self, result):
        if result.baseline_purity > 0:
            assert result.purity_gain == pytest.approx(
                result.purity / result.baseline_purity
            )

    def test_empty_population_raises(self, study):
        from repro.datasets import SeedDataset

        # Construct a study-like call with an impossible target set by
        # monkeypatching is unnecessary: government+security may exist, so
        # instead verify the ValueError path with a synthetic empty check.
        seeds = targeted_seeds(study, (OrgType.GOVERNMENT,))
        if not seeds.addresses:
            with pytest.raises(ValueError):
                run_targeted(study, (OrgType.GOVERNMENT,), budget=100)
        else:
            assert isinstance(seeds, SeedDataset)
