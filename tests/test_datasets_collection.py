"""Tests for the 12-source collection pipeline."""

import pytest

from repro.datasets import (
    COLLECTION_DATES,
    DOMAIN_SOURCES,
    HITLIST_SOURCES,
    ROUTER_SOURCES,
    SOURCE_ORDER,
    SOURCE_SPECS,
    collect_all,
    collect_one,
    domain_volume_row,
)
from repro.datasets.base import SourceKind


class TestCatalogue:
    def test_twelve_sources(self):
        assert len(SOURCE_ORDER) == 12
        assert set(SOURCE_ORDER) == set(SOURCE_SPECS)

    def test_source_families_partition(self):
        families = set(DOMAIN_SOURCES) | set(ROUTER_SOURCES) | set(HITLIST_SOURCES)
        assert families == set(SOURCE_ORDER)
        assert not set(DOMAIN_SOURCES) & set(ROUTER_SOURCES)

    def test_collection_dates_complete(self):
        assert set(COLLECTION_DATES) == set(SOURCE_ORDER)
        # Rapid7 is the archival outlier (2021).
        assert COLLECTION_DATES["rapid7"].startswith("2021")

    def test_spec_kinds(self):
        assert SOURCE_SPECS["censys"].kind is SourceKind.DOMAIN
        assert SOURCE_SPECS["scamper"].kind is SourceKind.ROUTER
        assert SOURCE_SPECS["addrminer"].kind is SourceKind.HITLIST


class TestCollectAll:
    def test_all_sources_collected(self, collection):
        assert len(collection) == 12
        assert collection.names == list(SOURCE_ORDER)

    def test_every_source_nonempty(self, collection):
        for dataset in collection:
            assert len(dataset) > 0, dataset.name

    def test_deterministic(self, internet, collection):
        again = collect_all(internet)
        for dataset in collection:
            assert again[dataset.name].addresses == dataset.addresses

    def test_collect_one_matches(self, internet, collection):
        censys = collect_one(internet, "censys")
        assert censys.addresses == collection["censys"].addresses

    def test_collect_one_unknown(self, internet):
        with pytest.raises(KeyError):
            collect_one(internet, "bogus")


class TestCompositionShape:
    """Relative composition must mirror the paper's Table 3 / Figure 1."""

    def test_traceroute_sources_lead_as_coverage(self, internet, collection):
        registry = internet.registry
        as_counts = {d.name: len(d.ases(registry)) for d in collection}
        top_two = sorted(as_counts, key=as_counts.get, reverse=True)[:2]
        assert set(top_two) == {"scamper", "ripe_atlas"}

    def test_addrminer_is_largest(self, collection):
        sizes = {d.name: len(d) for d in collection}
        assert max(sizes, key=sizes.get) == "addrminer"

    def test_toplists_are_small(self, collection):
        censys = len(collection["censys"])
        for name in ("umbrella", "majestic", "tranco", "secrank", "radar"):
            assert len(collection[name]) < censys / 5

    def test_domain_sources_overlap_each_other(self, collection):
        """Domain-derived sources resolve the same popular services.

        The threshold is loose: umbrella holds a few dozen addresses at
        tiny scale, so the ratio jumps in big steps across world seeds.
        """
        umbrella = collection["umbrella"]
        censys = collection["censys"]
        assert umbrella.overlap_fraction(censys) > 0.2

    def test_secrank_china_heavy(self, internet, collection):
        registry = internet.registry
        countries = [
            registry.info(asn).country
            for asn in collection["secrank"].ases(registry)
        ]
        if len(countries) < 5:
            pytest.skip("tiny world has too few eligible CN ASes to exercise the bias")
        assert countries.count("CN") / len(countries) > 0.4

    def test_addrminer_alias_rich(self, internet, collection):
        """AddrMiner carries far more aliased content than the Hitlist."""
        def alias_count(dataset):
            return sum(
                1 for a in dataset.addresses if internet.is_aliased_truth(a)
            )

        assert alias_count(collection["addrminer"]) > 3 * alias_count(
            collection["hitlist"]
        )

    def test_hitlist_respects_published_aliases(self, internet, collection):
        from repro.dealias import AliasPrefixSet

        published = AliasPrefixSet(internet.published_alias_prefixes)
        leaked = [a for a in collection["hitlist"].addresses if published.covers(a)]
        assert not leaked


class TestDomainVolumes:
    def test_metadata_present(self, collection):
        for name in DOMAIN_SOURCES:
            row = domain_volume_row(collection[name])
            assert row["domains"] > row["unique_ips"] > 0

    def test_censys_ratios(self, collection):
        row = domain_volume_row(collection["censys"])
        assert row["domains"] / row["unique_ips"] == pytest.approx(129.5, rel=0.01)
