"""Property-based tests of the ground-truth model's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internet import (
    ALL_PORTS,
    COLLECTION_EPOCH,
    SCAN_EPOCH,
    PatternKind,
    Port,
    PortProfile,
    Region,
    RegionRole,
)

region_salts = st.integers(min_value=0, max_value=2**32)
densities = st.integers(min_value=1, max_value=60)
patterns = st.sampled_from(list(PatternKind))
probabilities = st.floats(min_value=0.0, max_value=1.0)


def make_region(salt, density, pattern, icmp=0.9, tcp80=0.3, churn=0.1, **kw):
    return Region(
        net64=0x2001_0DB8_0000_0001,
        asn=64500,
        role=RegionRole.SERVER,
        pattern=pattern,
        density=density,
        profile=PortProfile(icmp=icmp, tcp80=tcp80, tcp443=0.3, udp53=0.05),
        churn_rate=churn,
        salt=salt,
        **kw,
    )


class TestRegionInvariants:
    @given(salt=region_salts, density=densities, pattern=patterns)
    @settings(max_examples=40, deadline=None)
    def test_responsive_subset_of_active(self, salt, density, pattern):
        region = make_region(salt, density, pattern)
        active = region.active_iids()
        for port in ALL_PORTS:
            for epoch in (COLLECTION_EPOCH, SCAN_EPOCH):
                assert region.responsive_iids(port, epoch) <= active

    @given(salt=region_salts, density=densities, pattern=patterns)
    @settings(max_examples=40, deadline=None)
    def test_scan_epoch_subset_of_collection(self, salt, density, pattern):
        """Churn only removes addresses, never adds them."""
        region = make_region(salt, density, pattern, churn=0.4)
        for port in ALL_PORTS:
            assert region.responsive_iids(port, SCAN_EPOCH) <= region.responsive_iids(
                port, COLLECTION_EPOCH
            )

    @given(salt=region_salts, density=densities)
    @settings(max_examples=30, deadline=None)
    def test_responds_agrees_with_responsive_iids(self, salt, density):
        region = make_region(salt, density, PatternKind.LOW)
        for iid in list(region.active_iids())[:10]:
            expected = iid in region.responsive_iids(Port.TCP80, SCAN_EPOCH)
            assert region.responds(region.address_of(iid), Port.TCP80, SCAN_EPOCH) == expected

    @given(salt=region_salts, density=densities, pattern=patterns)
    @settings(max_examples=30, deadline=None)
    def test_zero_probability_port_never_responds(self, salt, density, pattern):
        region = make_region(salt, density, pattern, icmp=0.0, tcp80=0.0)
        region = Region(
            net64=region.net64,
            asn=region.asn,
            role=region.role,
            pattern=pattern,
            density=density,
            profile=PortProfile(icmp=0.0, tcp80=0.0, tcp443=0.0, udp53=0.0),
            salt=salt,
        )
        for iid in list(region.active_iids())[:5]:
            for port in ALL_PORTS:
                assert not region.responds(region.address_of(iid), port, SCAN_EPOCH)

    @given(salt=region_salts, density=densities, pattern=patterns)
    @settings(max_examples=30, deadline=None)
    def test_observables_inside_region(self, salt, density, pattern):
        region = make_region(salt, density, pattern)
        for address in region.observable_addresses():
            assert region.contains(address)

    @given(salt=region_salts, density=densities)
    @settings(max_examples=30, deadline=None)
    def test_aliased_region_responds_everywhere(self, salt, density):
        region = make_region(salt, density, PatternKind.LOW, aliased=True)
        for iid in (0, 1, salt, 2**63 | salt):
            assert region.responds(region.address_of(iid), Port.ICMP, SCAN_EPOCH)

    @given(salt=region_salts, density=densities, pattern=patterns)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, salt, density, pattern):
        a = make_region(salt, density, pattern)
        b = make_region(salt, density, pattern)
        assert a.active_iids() == b.active_iids()
        assert a.responsive_iids(Port.ICMP, SCAN_EPOCH) == b.responsive_iids(
            Port.ICMP, SCAN_EPOCH
        )
