"""Property-based fuzzing of the TGA contract and scanner invariants.

Hypothesis drives every generator with arbitrary structured seed sets
and asserts the interface invariants the run loop depends on: fresh
unique valid proposals, stability under feedback, determinism.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.addr import MAX_ADDRESS
from repro.tga import ALL_TGA_NAMES, create_tga

# Structured seed material: a few /64 networks with low-ish IIDs, so
# generators always have something to mine, plus arbitrary extras.
networks = st.integers(min_value=1, max_value=2**64 - 1)
iids = st.integers(min_value=1, max_value=0xFFFF)


@st.composite
def seed_sets(draw):
    nets = draw(st.lists(networks, min_size=1, max_size=4, unique=True))
    seeds: set[int] = set()
    for net in nets:
        count = draw(st.integers(min_value=1, max_value=12))
        base = draw(iids)
        for offset in range(count):
            seeds.add((net << 64) | (base + offset))
    extras = draw(
        st.lists(
            st.integers(min_value=0, max_value=MAX_ADDRESS),
            max_size=3,
            unique=True,
        )
    )
    seeds.update(extras)
    return sorted(seeds)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seeds=seed_sets())
def test_tga_contract_under_fuzz(seeds):
    for name in ALL_TGA_NAMES:
        tga = create_tga(name)
        tga.prepare(seeds)
        seen: set[int] = set()
        for _ in range(3):
            batch = tga.propose(64)
            # Valid 128-bit addresses, no seeds, no duplicates in batch.
            assert all(0 <= a <= MAX_ADDRESS for a in batch), name
            assert not set(batch) & set(seeds), name
            assert len(batch) == len(set(batch)), name
            # Online models must tolerate arbitrary boolean feedback.
            tga.observe({a: (a & 1 == 0) for a in batch})
            seen.update(batch)
            if not batch:
                break


@settings(max_examples=10, deadline=None)
@given(
    seeds=seed_sets(),
    name=st.sampled_from(ALL_TGA_NAMES),
)
def test_tga_determinism_under_fuzz(seeds, name):
    a = create_tga(name, salt=3)
    b = create_tga(name, salt=3)
    a.prepare(seeds)
    b.prepare(seeds)
    assert a.propose(50) == b.propose(50)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=MAX_ADDRESS), max_size=60))
def test_scanner_hits_subset_of_targets(internet_module, addresses):
    from repro.internet import Port
    from repro.scanner import Scanner

    scanner = Scanner(internet_module)
    result = scanner.scan(addresses, Port.ICMP)
    assert result.hits <= set(addresses)
    # Determinism: a rescan yields the identical hit set.
    again = Scanner(internet_module).scan(addresses, Port.ICMP)
    assert again.hits == result.hits


# Hypothesis needs a non-function-scoped fixture workaround: expose the
# session world under a distinct name usable inside @given tests.
import pytest  # noqa: E402


@pytest.fixture(scope="session")
def internet_module(internet):
    return internet
