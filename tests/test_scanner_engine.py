"""Tests for repro.scanner.engine."""

import itertools

from repro.internet import COLLECTION_EPOCH, SCAN_EPOCH, Port
from repro.scanner import Blocklist, ResponseType, Scanner


def responsive_address(internet, port=Port.ICMP, epoch=SCAN_EPOCH):
    return next(iter(internet.iter_responsive(port, epoch)))


class TestProbe:
    def test_hit_classified_affirmative(self, internet, scanner):
        address = responsive_address(internet)
        assert scanner.probe(address, Port.ICMP) is ResponseType.ECHO_REPLY

    def test_unallocated_times_out(self, scanner):
        assert scanner.probe(0x3FFF << 112, Port.ICMP) is ResponseType.TIMEOUT

    def test_blocked_never_sent(self, internet):
        address = responsive_address(internet)
        blocklist = Blocklist()
        from repro.addr import Prefix

        blocklist.add(Prefix.of(address, 64))
        scanner = Scanner(internet, blocklist=blocklist)
        assert scanner.probe(address, Port.ICMP) is ResponseType.BLOCKED
        assert scanner.rate_limiter.packets_sent == 0

    def test_is_responsive(self, internet, scanner):
        assert scanner.is_responsive(responsive_address(internet), Port.ICMP)

    def test_probe_with_retries_on_rate_limited_alias(self, internet):
        aliased = next(
            r
            for r in internet.regions
            if r.aliased and r.alias_response_prob < 1.0
        )
        scanner = Scanner(internet)
        # With enough retries the rate-limited alias eventually answers
        # for at least one of several addresses.
        answered = sum(
            scanner.probe_with_retries(aliased.address_of(i), Port.ICMP, retries=6)
            for i in range(10)
        )
        assert answered > 0


class TestBatchScan:
    def test_scan_finds_all_responsive(self, internet, scanner):
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 500))
        result = scanner.scan(targets, Port.ICMP)
        assert result.hits == set(targets)
        assert result.num_hits == 500

    def test_scan_mixed_targets(self, internet, scanner):
        live = list(itertools.islice(internet.iter_responsive(Port.ICMP), 100))
        dead = [(0x3FFF << 112) + i for i in range(100)]
        result = scanner.scan(live + dead, Port.ICMP)
        assert result.hits == set(live)
        assert result.stats.probes_sent == 200

    def test_scan_agrees_with_probe(self, internet, scanner):
        region = internet.regions[0]
        targets = [region.address_of(i) for i in range(50)]
        result = scanner.scan(targets, Port.TCP80)
        for address in targets:
            expected = internet.probe(address, Port.TCP80)
            assert (address in result.hits) == expected

    def test_scan_respects_blocklist(self, internet):
        from repro.addr import Prefix

        live = list(itertools.islice(internet.iter_responsive(Port.ICMP), 20))
        blocklist = Blocklist([Prefix.of(live[0], 128)])
        scanner = Scanner(internet, blocklist=blocklist)
        result = scanner.scan(live, Port.ICMP)
        assert live[0] not in result.hits
        assert result.stats.targets_blocked == 1

    def test_scan_epoch_zero_sees_churned(self, internet):
        collection_scanner = Scanner(internet, epoch=COLLECTION_EPOCH)
        scan_scanner = Scanner(internet, epoch=SCAN_EPOCH)
        targets = list(
            itertools.islice(
                internet.iter_responsive(Port.ICMP, COLLECTION_EPOCH), 2000
            )
        )
        then = collection_scanner.scan(targets, Port.ICMP)
        now = scan_scanner.scan(targets, Port.ICMP)
        assert then.num_hits == len(targets)
        assert now.num_hits < then.num_hits  # churn happened

    def test_scan_all_ports(self, internet, scanner):
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 100))
        results = scanner.scan_all_ports(targets, (Port.ICMP, Port.UDP53))
        assert set(results) == {Port.ICMP, Port.UDP53}
        assert results[Port.ICMP].num_hits >= results[Port.UDP53].num_hits

    def test_negative_responses_recorded_not_hits(self, internet, scanner):
        region = next(
            r for r in internet.regions if not r.aliased and not r.firewalled
        )
        # Probe clearly inactive IIDs within an allocated region.
        targets = [region.address_of(0xFFFF_0000 + i) for i in range(300)]
        result = scanner.scan(targets, Port.TCP80)
        assert result.num_hits == 0
        assert result.stats.count(ResponseType.RST) > 0
        assert result.stats.hits == 0

    def test_lifetime_stats_accumulate(self, internet):
        scanner = Scanner(internet)
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 50))
        scanner.scan(targets, Port.ICMP)
        scanner.scan(targets, Port.ICMP)
        assert scanner.lifetime_stats.probes_sent == 100

    def test_virtual_duration_positive(self, internet):
        scanner = Scanner(internet, packets_per_second=100)
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 50))
        result = scanner.scan(targets, Port.ICMP)
        assert result.stats.virtual_duration == 0.5
