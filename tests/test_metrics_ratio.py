"""Tests for repro.metrics.ratio (the paper's Performance Ratio)."""

import math

import pytest

from repro.metrics import MetricSet, metric_ratios, performance_ratio


class TestPerformanceRatio:
    def test_no_change_is_zero(self):
        assert performance_ratio(100, 100) == 0.0

    def test_doubling_is_one(self):
        """The paper's calibration: doubling performance gives 1.0."""
        assert performance_ratio(200, 100) == pytest.approx(1.0)

    def test_halving(self):
        assert performance_ratio(50, 100) == pytest.approx(-0.5)

    def test_zeroing_is_minus_one(self):
        assert performance_ratio(0, 100) == pytest.approx(-1.0)

    def test_zero_original_zero_changed(self):
        assert performance_ratio(0, 0) == 0.0

    def test_zero_original_positive_changed(self):
        assert performance_ratio(5, 0) == math.inf

    def test_tenfold(self):
        assert performance_ratio(1000, 100) == pytest.approx(9.0)


class TestMetricRatios:
    def test_all_three(self):
        original = MetricSet(hits=100, ases=10, aliases=50)
        changed = MetricSet(hits=170, ases=13, aliases=5)
        ratios = metric_ratios(changed, original)
        assert ratios["hits"] == pytest.approx(0.7)
        assert ratios["ases"] == pytest.approx(0.3)
        assert ratios["aliases"] == pytest.approx(-0.9)

    def test_keys(self):
        ratios = metric_ratios(MetricSet(1, 1, 1), MetricSet(1, 1, 1))
        assert set(ratios) == {"hits", "ases", "aliases"}
