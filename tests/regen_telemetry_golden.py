"""Regenerate the golden telemetry fixture.

Run this (and commit the result) ONLY after an intentional change to
what the telemetry subsystem records:

    PYTHONPATH=src python -m tests.regen_telemetry_golden

The fixture lives at ``tests/data/telemetry_golden.json`` and is
asserted byte-for-byte by ``tests/test_telemetry_golden.py``.
"""

from __future__ import annotations

from .golden_telemetry import GOLDEN_PATH, write_golden_payload


def main() -> int:
    payload = write_golden_payload()
    counters = payload["snapshot"]["counters"]
    print(
        f"wrote {GOLDEN_PATH} "
        f"({len(payload['events'])} events, {len(counters)} counters)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
