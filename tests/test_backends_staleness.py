"""Tests for probe backends and the staleness metrics."""

import itertools

import pytest

from repro.internet import Port
from repro.metrics import collection_staleness, staleness_report
from repro.scanner import CachingBackend, ProbeBackend, Scanner, SimulatedBackend


class TestSimulatedBackend:
    def test_satisfies_protocol(self, internet):
        backend = SimulatedBackend(Scanner(internet))
        assert isinstance(backend, ProbeBackend)

    def test_probe_batch_matches_scanner(self, internet):
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 100))
        backend = SimulatedBackend(Scanner(internet))
        assert backend.probe_batch(targets, Port.ICMP) == set(targets)

    def test_verify(self, internet):
        backend = SimulatedBackend(Scanner(internet))
        live = next(internet.iter_responsive(Port.ICMP))
        assert backend.verify(live, Port.ICMP)
        assert not backend.verify(0x3FFF << 112, Port.ICMP)

    def test_packets_counted(self, internet):
        backend = SimulatedBackend(Scanner(internet))
        backend.probe_batch([1, 2, 3], Port.ICMP)
        assert backend.packets_sent == 3


class TestCachingBackend:
    def test_results_identical_to_inner(self, internet):
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 80))
        targets += [0x3FFF << 112]
        plain = SimulatedBackend(Scanner(internet))
        cached = CachingBackend(SimulatedBackend(Scanner(internet)))
        assert cached.probe_batch(targets, Port.ICMP) == plain.probe_batch(
            targets, Port.ICMP
        )

    def test_repeat_probes_hit_cache(self, internet):
        inner = SimulatedBackend(Scanner(internet))
        cached = CachingBackend(inner)
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 50))
        cached.probe_batch(targets, Port.ICMP)
        sent_after_first = inner.packets_sent
        cached.probe_batch(targets, Port.ICMP)
        assert inner.packets_sent == sent_after_first  # no new packets
        assert cached.cache_hits == 50

    def test_ports_cached_separately(self, internet):
        cached = CachingBackend(SimulatedBackend(Scanner(internet)))
        target = next(internet.iter_responsive(Port.ICMP))
        cached.probe_batch([target], Port.ICMP)
        cached.probe_batch([target], Port.UDP53)
        assert len(cached) == 2

    def test_duplicates_within_batch_probed_once(self, internet):
        # Regression: duplicate targets in one batch used to be handed
        # to the inner backend once per occurrence.  Real backends may
        # not tolerate duplicate targets in a single submission, and
        # each (address, port) pair must cost at most one probe.
        class RecordingBackend:
            def __init__(self, inner):
                self.inner = inner
                self.batches: list[list[int]] = []

            def probe_batch(self, addresses, port):
                batch = list(addresses)
                self.batches.append(batch)
                return self.inner.probe_batch(batch, port)

            def verify(self, address, port, retries=3):
                return self.inner.verify(address, port, retries=retries)

        live = list(itertools.islice(internet.iter_responsive(Port.ICMP), 3))
        dead = 0x3FFF << 112
        recorder = RecordingBackend(SimulatedBackend(Scanner(internet)))
        cached = CachingBackend(recorder)
        batch = [live[0], dead, live[0], live[1], dead, live[2], live[1]]
        result = cached.probe_batch(batch, Port.ICMP)
        assert result == set(live)
        # One inner submission, each unique address exactly once, in
        # first-seen order.
        assert recorder.batches == [[live[0], dead, live[1], live[2]]]
        assert cached.cache_hits == 0
        # Every occurrence of a now-cached address counts a cache hit.
        cached.probe_batch([live[0], live[0], dead], Port.ICMP)
        assert cached.cache_hits == 3
        assert recorder.batches == [[live[0], dead, live[1], live[2]]]

    def test_verify_cached(self, internet):
        inner = SimulatedBackend(Scanner(internet))
        cached = CachingBackend(inner)
        live = next(internet.iter_responsive(Port.ICMP))
        assert cached.verify(live, Port.ICMP)
        sent = inner.packets_sent
        assert cached.verify(live, Port.ICMP)
        assert inner.packets_sent == sent

    def test_satisfies_protocol(self, internet):
        assert isinstance(
            CachingBackend(SimulatedBackend(Scanner(internet))), ProbeBackend
        )


class TestStaleness:
    def test_classification_partitions(self, internet, collection):
        report = staleness_report(internet, collection["hitlist"])
        total = (
            report.responsive
            + report.aliased
            + report.firewalled
            + report.region_retired
            + report.region_renumbered
            + report.churned_or_filtered
            + report.unrouted
        )
        assert total == report.total == len(collection["hitlist"])

    def test_responsive_fraction_bounds(self, internet, collection):
        for dataset in collection:
            report = staleness_report(internet, dataset)
            assert 0.0 <= report.responsive_fraction <= 1.0

    def test_archival_source_staler(self, internet, collection):
        """Rapid7 (archival 2021) must be staler than Censys (fresh)."""
        rapid7 = staleness_report(internet, collection["rapid7"])
        censys = staleness_report(internet, collection["censys"])
        assert rapid7.responsive_fraction < censys.responsive_fraction

    def test_scamper_has_firewalled_mass(self, internet, collection):
        report = staleness_report(internet, collection["scamper"])
        assert report.firewalled > 0

    def test_collection_staleness_order(self, internet, collection):
        reports = collection_staleness(internet, collection)
        assert [r.source for r in reports] == collection.names

    def test_as_dict(self, internet, collection):
        info = staleness_report(internet, collection["censys"]).as_dict()
        assert {"source", "responsive_fraction", "region_renumbered"} <= set(info)
