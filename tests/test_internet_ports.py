"""Tests for repro.internet.ports."""

from repro.internet import ALL_PORTS, Port, PortProfile
from repro.internet.ports import CDN_EDGE, ROUTER, WEB_SERVER


class TestPort:
    def test_all_ports_count(self):
        assert len(ALL_PORTS) == 4

    def test_indices_distinct(self):
        assert len({port.index for port in ALL_PORTS}) == 4

    def test_is_tcp(self):
        assert Port.TCP80.is_tcp
        assert Port.TCP443.is_tcp
        assert not Port.ICMP.is_tcp
        assert not Port.UDP53.is_tcp

    def test_is_application(self):
        assert not Port.ICMP.is_application
        assert all(port.is_application for port in ALL_PORTS if port is not Port.ICMP)

    def test_string_identity(self):
        assert Port("tcp80") is Port.TCP80


class TestPortProfile:
    def test_probability_mapping(self):
        profile = PortProfile(icmp=0.9, tcp80=0.1, tcp443=0.2, udp53=0.3)
        assert profile.probability(Port.ICMP) == 0.9
        assert profile.probability(Port.TCP80) == 0.1
        assert profile.probability(Port.TCP443) == 0.2
        assert profile.probability(Port.UDP53) == 0.3

    def test_scaled_clamps(self):
        profile = PortProfile(icmp=0.9, tcp80=0.6)
        scaled = profile.scaled(2.0)
        assert scaled.icmp == 1.0
        assert scaled.tcp80 == 1.0

    def test_scaled_down(self):
        profile = PortProfile(icmp=0.8)
        assert abs(profile.scaled(0.5).icmp - 0.4) < 1e-9

    def test_canonical_profiles_shape(self):
        # Web servers answer web ports; routers barely do.
        assert WEB_SERVER.tcp443 > 0.5
        assert ROUTER.tcp443 < 0.05
        assert ROUTER.icmp > 0.5
        assert CDN_EDGE.tcp80 >= 0.8 and WEB_SERVER.tcp80 >= 0.8
