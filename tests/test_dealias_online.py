"""Tests for repro.dealias.online (the 6Gen /96 verification)."""

import pytest

from repro.internet import Port
from repro.scanner import Scanner
from repro.dealias import OnlineDealiaser


def full_alias_region(internet):
    return next(
        r
        for r in internet.regions
        if r.aliased and r.alias_response_prob >= 1.0 and r.profile.icmp > 0
    )


def normal_region(internet):
    return next(
        r
        for r in internet.regions
        if not r.aliased
        and not r.firewalled
        and not r.retired
        and len(r.responsive_iids(Port.ICMP, 1)) > 3
    )


class TestDetection:
    def test_detects_full_alias(self, internet, scanner):
        dealiaser = OnlineDealiaser(scanner)
        region = full_alias_region(internet)
        assert dealiaser.is_aliased(region.address_of(1), Port.ICMP)
        assert len(dealiaser.detected) == 1

    def test_normal_region_not_aliased(self, internet, scanner):
        dealiaser = OnlineDealiaser(scanner)
        region = normal_region(internet)
        iid = next(iter(region.responsive_iids(Port.ICMP, 1)))
        assert not dealiaser.is_aliased(region.address_of(iid), Port.ICMP)

    def test_verdict_cached(self, internet, scanner):
        dealiaser = OnlineDealiaser(scanner)
        region = full_alias_region(internet)
        dealiaser.is_aliased(region.address_of(1), Port.ICMP)
        probes_after_first = dealiaser.verification_probes
        dealiaser.is_aliased(region.address_of(2), Port.ICMP)
        assert dealiaser.verification_probes == probes_after_first

    def test_detected_prefix_covers_region(self, internet, scanner):
        dealiaser = OnlineDealiaser(scanner)
        region = full_alias_region(internet)
        dealiaser.is_aliased(region.address_of(1), Port.ICMP)
        prefix = dealiaser.detected.prefixes()[0]
        assert prefix.length == 96
        assert region.contains(prefix.value)


class TestPartition:
    def test_partition_splits(self, internet, scanner):
        dealiaser = OnlineDealiaser(scanner)
        alias_region = full_alias_region(internet)
        clean_region = normal_region(internet)
        iid = next(iter(clean_region.responsive_iids(Port.ICMP, 1)))
        aliased_addr = alias_region.address_of(42)
        clean_addr = clean_region.address_of(iid)
        clean, aliased = dealiaser.partition([aliased_addr, clean_addr], Port.ICMP)
        assert clean == {clean_addr}
        assert aliased == {aliased_addr}


class TestRateLimitedAliases:
    def test_rate_limited_sometimes_missed(self, internet):
        """Rate-limited aliases evade online detection some of the time —
        the reason the paper recommends joint dealiasing."""
        scanner = Scanner(internet)
        dealiaser = OnlineDealiaser(scanner)
        limited = [
            r
            for r in internet.regions
            if r.aliased and r.alias_response_prob < 1.0 and r.profile.icmp > 0
        ]
        verdicts = [
            dealiaser.is_aliased(region.address_of(7), Port.ICMP)
            for region in limited
        ]
        # Detection is imperfect but not hopeless.
        assert any(verdicts) or len(limited) < 3
        # (With response probability well below 1, at least one miss is
        # overwhelmingly likely across the tiny world's limited aliases.)
        if len(limited) >= 5:
            assert not all(verdicts)


class TestConfiguration:
    def test_invalid_prefix_bits(self, scanner):
        with pytest.raises(ValueError):
            OnlineDealiaser(scanner, prefix_bits=0)
        with pytest.raises(ValueError):
            OnlineDealiaser(scanner, prefix_bits=128)

    def test_threshold_exceeds_probes(self, scanner):
        with pytest.raises(ValueError):
            OnlineDealiaser(scanner, probes_per_prefix=3, threshold=4)

    def test_paper_defaults(self, scanner):
        """3 random addresses, 3 retries, 2-of-3 threshold, /96 — §4.2."""
        dealiaser = OnlineDealiaser(scanner)
        assert dealiaser.probes_per_prefix == 3
        assert dealiaser.retries == 3
        assert dealiaser.threshold == 2
        assert dealiaser.prefix_bits == 96
