"""Tests for repro.telemetry.resources: the resource flight recorder.

Covers the /proc readers, the sampler's event/gauge/watermark output,
the heartbeat file protocol and stall monitor, the sanctioned-variant
bit-identity property (grid results and stripped traces must not move
when sampling is toggled), executor-level stall detection in
O(sample interval), and the peak-RSS regression gate.
"""

import json
import os
import time

import pytest

from repro.experiments import (
    ExecutionPolicy,
    FaultPlan,
    FaultRule,
    GridSpec,
    Study,
    run_grid,
)
from repro.internet import InternetConfig, Port
from repro.telemetry import (
    SANCTIONED_VARIANT_PREFIXES,
    Heartbeat,
    HeartbeatMonitor,
    MemorySink,
    ResourceSampler,
    ResourceTimeline,
    Telemetry,
    gc_collections,
    read_cpu_seconds,
    read_rss_bytes,
    strip_variant_events,
    to_prometheus_text,
    trace_peak_rss_mb,
)
from repro.telemetry.analysis import NONDETERMINISTIC_PREFIXES, Trace
from repro.telemetry.resources import (
    ResourceSpec,
    read_heartbeat,
    write_heartbeat,
)

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# process readers


class TestProcessReaders:
    def test_rss_is_positive_and_plausible(self):
        rss = read_rss_bytes()
        assert isinstance(rss, int)
        # A python process is bigger than 1 MiB and (here) smaller than 64 GiB.
        assert MB < rss < 64 * 1024 * MB

    def test_cpu_seconds_monotone(self):
        before = read_cpu_seconds()
        deadline = time.monotonic() + 0.05
        while time.monotonic() < deadline:
            sum(range(1000))
        after = read_cpu_seconds()
        assert before >= 0.0
        assert after >= before

    def test_gc_collections_is_nonnegative_int(self):
        count = gc_collections()
        assert isinstance(count, int)
        assert count >= 0


# ---------------------------------------------------------------------------
# heartbeat protocol


class TestHeartbeatFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "c0a0s0.hb"
        write_heartbeat(path, 7, 1.25)
        beat = read_heartbeat(path)
        assert beat == Heartbeat(seq=7, cpu_seconds=1.25, mtime=beat.mtime)
        assert beat.mtime > 0

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "beat.hb"
        write_heartbeat(path, 1, 0.5)
        write_heartbeat(path, 2, 0.75)
        beat = read_heartbeat(path)
        assert (beat.seq, beat.cpu_seconds) == (2, 0.75)

    def test_missing_file_reads_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.hb") is None

    def test_torn_file_reads_none(self, tmp_path):
        path = tmp_path / "torn.hb"
        path.write_text("garbage not two fields or numbers at all")
        assert read_heartbeat(path) is None


class FakeClocks:
    """Paired monotonic/wall clocks the tests can advance by hand."""

    def __init__(self) -> None:
        self.now = 1000.0

    def monotonic(self) -> float:
        return self.now

    def wall(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestHeartbeatMonitor:
    def make(self, tmp_path, grace=1.0):
        clocks = FakeClocks()
        monitor = HeartbeatMonitor(
            grace=grace, clock=clocks.monotonic, wall=clocks.wall
        )
        return monitor, clocks, tmp_path / "chunk.hb"

    def beat(self, path, clocks, seq, cpu):
        write_heartbeat(path, seq, cpu)
        os.utime(path, (clocks.wall(), clocks.wall()))

    def test_no_heartbeat_yet_is_healthy(self, tmp_path):
        monitor, _, path = self.make(tmp_path)
        assert monitor.check("c0", path) is None

    def test_stale_file_reports_frozen_process(self, tmp_path):
        monitor, clocks, path = self.make(tmp_path, grace=1.0)
        self.beat(path, clocks, 1, 0.1)
        clocks.advance(10.0)
        reason = monitor.check("c0", path)
        assert reason is not None and "no heartbeat" in reason

    def test_idle_cpu_under_fresh_beats_reports_stall(self, tmp_path):
        monitor, clocks, path = self.make(tmp_path, grace=1.0)
        self.beat(path, clocks, 1, 5.0)
        assert monitor.check("c0", path) is None  # anchors
        clocks.advance(0.5)
        self.beat(path, clocks, 2, 5.0)  # fresh beat, zero CPU progress
        assert monitor.check("c0", path) is None  # window < grace
        clocks.advance(1.0)
        self.beat(path, clocks, 3, 5.001)
        reason = monitor.check("c0", path)
        assert reason is not None and "CPU idle" in reason

    def test_busy_worker_reanchors_forever(self, tmp_path):
        monitor, clocks, path = self.make(tmp_path, grace=1.0)
        cpu = 1.0
        self.beat(path, clocks, 1, cpu)
        assert monitor.check("c0", path) is None
        for seq in range(2, 12):
            clocks.advance(0.8)
            cpu += 0.7  # hard at work
            self.beat(path, clocks, seq, cpu)
            assert monitor.check("c0", path) is None

    def test_forget_and_reset_drop_anchors(self, tmp_path):
        monitor, clocks, path = self.make(tmp_path, grace=1.0)
        self.beat(path, clocks, 1, 2.0)
        assert monitor.check("c0", path) is None
        monitor.forget("c0")
        clocks.advance(1.5)
        self.beat(path, clocks, 2, 2.0)
        # Fresh anchor after forget: no verdict on the first re-check.
        assert monitor.check("c0", path) is None
        monitor.reset()
        assert monitor._anchors == {}

    def test_rejects_nonpositive_grace(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(grace=0.0)


# ---------------------------------------------------------------------------
# sampler unit behaviour (injected readers; no real timing dependence)


def make_sampler(telemetry=None, rss_values=None, **kwargs):
    values = list(rss_values or [100 * MB])

    def rss():
        return values.pop(0) if len(values) > 1 else values[0]

    return ResourceSampler(
        telemetry=telemetry,
        interval=10.0,  # never fires on its own in a test
        rss_reader=rss,
        cpu_reader=lambda: 1.5,
        **kwargs,
    )


class TestResourceSampler:
    def test_sample_emits_event_counters_and_gauges(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        sampler = make_sampler(telemetry=tel, rss_values=[100 * MB])
        sample = sampler.sample_now()
        assert sample["rss_mb"] == 100.0
        assert sample["cpu_s"] == 1.5
        events = [e for e in sink.events if e.get("type") == "resource"]
        assert events and events[0]["kind"] == "sample"
        assert events[0]["rank"] == "parent"
        assert tel.counters["resource.samples"] == 1
        assert tel.gauges["resource.rss_mb"] == 100.0
        assert tel.gauges["resource.peak_rss_mb"] == 100.0

    def test_peak_tracks_maximum_not_last(self):
        tel = Telemetry()
        sampler = make_sampler(
            telemetry=tel, rss_values=[100 * MB, 300 * MB, 120 * MB, 120 * MB]
        )
        for _ in range(3):
            sampler.sample_now()
        assert sampler.peak_rss_bytes == 300 * MB
        assert tel.gauges["resource.peak_rss_mb"] == 300.0
        assert tel.gauges["resource.rss_mb"] == 120.0

    def test_span_and_tga_tagging(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        sampler = make_sampler(telemetry=tel)
        with tel.span("grid"):
            with tel.span("cell", tga="6tree"):
                sampler.sample_now()
        event = [e for e in sink.events if e.get("type") == "resource"][0]
        assert event["span"] == "grid/cell"
        assert event["tga"] == "6tree"

    def test_watermarks_fire_once_each(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        sampler = make_sampler(
            telemetry=tel,
            rss_values=[90 * MB, 90 * MB, 110 * MB, 110 * MB, 110 * MB],
            budget_mb=100,
        )
        for _ in range(4):
            sampler.sample_now()
        marks = [
            e
            for e in sink.events
            if e.get("type") == "resource" and e.get("kind") == "watermark"
        ]
        assert [m["level"] for m in marks] == ["warn", "degrade"]
        assert tel.counters["resource.watermark.warn"] == 1
        assert tel.counters["resource.watermark.degrade"] == 1
        assert sampler.degraded

    def test_heartbeats_piggyback_on_samples(self, tmp_path):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        path = tmp_path / "beat.hb"
        sampler = make_sampler(telemetry=tel, heartbeat_path=path)
        sampler.sample_now()
        sampler.sample_now()
        beat = read_heartbeat(path)
        assert beat.seq == 2
        assert beat.cpu_seconds == 1.5
        assert tel.counters["heartbeat.beats"] == 2
        assert len([e for e in sink.events if e.get("type") == "heartbeat"]) == 2

    def test_provider_failure_never_breaks_a_sample(self):
        def boom():
            raise RuntimeError("provider exploded")

        sampler = make_sampler(providers={"bad": boom, "good": lambda: 4.0})
        sample = sampler.sample_now()
        assert "bad" not in sample
        assert sample["good"] == 4.0

    def test_start_stop_idempotent_and_final_sample(self):
        tel = Telemetry()
        sampler = make_sampler(telemetry=tel)
        assert sampler.start() is sampler
        sampler.start()  # no-op
        before = sampler.samples
        sampler.stop()  # joins and takes a final synchronous sample
        sampler.stop()  # no-op
        assert sampler.samples >= max(before, 1) + 1 - 1  # at least one more
        assert tel.counters["resource.samples"] == sampler.samples

    def test_telemetry_attachable_after_start(self):
        tel = Telemetry()
        sampler = make_sampler(telemetry=None)
        sampler.sample_now()  # no registry yet: still counts and peaks
        assert sampler.samples == 1
        sampler.telemetry = tel
        sampler.sample_now()
        assert tel.counters["resource.samples"] == 1

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0.0)
        with pytest.raises(ValueError):
            ResourceSpec(interval=-1.0)


class TestExecutionPolicyValidation:
    def test_resource_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(resource_interval=0.0)

    def test_heartbeat_grace_requires_interval(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(heartbeat_grace=1.0)

    def test_resolved_grace_defaults_to_twice_interval(self):
        policy = ExecutionPolicy(resource_interval=0.25)
        assert policy.resolved_heartbeat_grace == 0.5
        explicit = ExecutionPolicy(resource_interval=0.25, heartbeat_grace=3.0)
        assert explicit.resolved_heartbeat_grace == 3.0
        assert ExecutionPolicy().resolved_heartbeat_grace is None


# ---------------------------------------------------------------------------
# the bit-identity property: sampling must never move results or the
# deterministic core of the trace


GRID_TGAS = ("6tree", "eip")
GRID_BUDGET = 300


def sampled_grid(workers: int | None, interval: float | None):
    study = Study(config=InternetConfig.tiny(), budget=400, round_size=200)
    spec = GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=GRID_TGAS,
        ports=(Port.ICMP,),
        budget=GRID_BUDGET,
    )
    sink = MemorySink()
    telemetry = Telemetry(sinks=[sink])
    policy = ExecutionPolicy(
        workers=workers, telemetry=telemetry, resource_interval=interval
    )
    results = run_grid(study, spec, policy=policy)
    telemetry.close()
    return results, telemetry, sink


def assert_identical_runs(a, b) -> None:
    assert a.clean_hits == b.clean_hits
    assert a.aliased_hits == b.aliased_hits
    assert a.active_ases == b.active_ases
    assert a.metrics == b.metrics
    assert a.round_history == b.round_history


def deterministic_counters(telemetry: Telemetry) -> dict:
    return {
        name: value
        for name, value in telemetry.counters.items()
        if not name.startswith(SANCTIONED_VARIANT_PREFIXES)
    }


class TestSamplingBitIdentity:
    """Grid results and the stripped trace are invariant under the
    sampler — per execution strategy — and the deterministic counters /
    span tree are invariant across strategies too."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_results_and_stripped_trace_invariant_per_strategy(self, workers):
        plain_results, plain_tel, plain_sink = sampled_grid(workers, None)
        sampled_results, sampled_tel, sampled_sink = sampled_grid(workers, 0.02)

        assert set(plain_results.runs) == set(sampled_results.runs)
        for key in plain_results.runs:
            assert_identical_runs(plain_results.runs[key], sampled_results.runs[key])

        # The sampled trace genuinely recorded something...
        assert sampled_tel.counters.get("resource.samples", 0) > 0
        # ...and stripping the sanctioned event types recovers the
        # unsampled stream byte for byte.
        assert strip_variant_events(plain_sink.events) == strip_variant_events(
            sampled_sink.events
        )
        assert deterministic_counters(plain_tel) == deterministic_counters(
            sampled_tel
        )
        assert plain_tel.root.snapshot() == sampled_tel.root.snapshot()

    def test_deterministic_core_invariant_across_strategies(self):
        serial_results, serial_tel, _ = sampled_grid(None, 0.02)
        parallel_results, parallel_tel, _ = sampled_grid(2, 0.02)

        assert set(serial_results.runs) == set(parallel_results.runs)
        for key in serial_results.runs:
            assert_identical_runs(
                serial_results.runs[key], parallel_results.runs[key]
            )
        assert deterministic_counters(serial_tel) == deterministic_counters(
            parallel_tel
        )
        assert {
            name: hist.snapshot() for name, hist in serial_tel.histograms.items()
        } == {
            name: hist.snapshot() for name, hist in parallel_tel.histograms.items()
        }
        assert serial_tel.root.snapshot() == parallel_tel.root.snapshot()

    def test_parallel_trace_merges_worker_samples(self):
        _, tel, sink = sampled_grid(2, 0.02)
        ranks = {
            e.get("rank")
            for e in sink.events
            if e.get("type") == "resource" and e.get("kind") == "sample"
        }
        assert "parent" in ranks
        assert any(str(rank).startswith("w") for rank in ranks)
        # Peak gauges max-merge: the merged figure is at least every
        # individual sample.
        timeline = ResourceTimeline.from_trace(
            Trace(path="<memory>", events=sink.events, snapshot=sink.snapshot)
        )
        assert tel.gauges["resource.peak_rss_mb"] >= timeline.peak_rss_mb - 0.01


# ---------------------------------------------------------------------------
# executor-level stall detection (the acceptance scenario)


class TestHeartbeatStallDetection:
    def test_stalled_worker_detected_well_before_cell_timeout(self):
        """An injected stall sleeps the worker's main thread for an hour;
        heartbeats must get the cell reaped and retried in O(interval),
        not O(cell_timeout)."""
        cell_timeout = 60.0
        study = Study(config=InternetConfig.tiny(), budget=400, round_size=200)
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=GRID_TGAS,
            ports=(Port.ICMP,),
            budget=GRID_BUDGET,
        )
        telemetry = Telemetry()
        plan = FaultPlan(rules=(FaultRule("stall", tga="6tree"),))
        policy = ExecutionPolicy(
            workers=2,
            fault_plan=plan,
            max_retries=2,
            cell_timeout=cell_timeout,
            resource_interval=0.15,
            telemetry=telemetry,
        )
        start = time.monotonic()
        results = run_grid(study, spec, policy=policy)
        elapsed = time.monotonic() - start

        assert results.complete
        assert elapsed < cell_timeout / 2
        assert telemetry.counters.get("fault.stall", 0) >= 1

        baseline_study = Study(
            config=InternetConfig.tiny(), budget=400, round_size=200
        )
        baseline = run_grid(
            baseline_study,
            GridSpec(
                datasets=(baseline_study.constructions.all_active,),
                tga_names=GRID_TGAS,
                ports=(Port.ICMP,),
                budget=GRID_BUDGET,
            ),
        )
        for key in baseline.runs:
            assert_identical_runs(baseline.runs[key], results.runs[key])

    def test_slow_but_alive_worker_is_never_reaped(self):
        """The negative control: a busy fault burns CPU well past the
        heartbeat grace; CPU progress keeps re-anchoring the monitor, so
        the cell completes without a stall charge."""
        study = Study(config=InternetConfig.tiny(), budget=400, round_size=200)
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=GRID_TGAS,
            ports=(Port.ICMP,),
            budget=GRID_BUDGET,
        )
        telemetry = Telemetry()
        plan = FaultPlan(
            rules=(FaultRule("busy", tga="6tree"),), busy_seconds=1.2
        )
        policy = ExecutionPolicy(
            workers=2,
            fault_plan=plan,
            max_retries=2,
            cell_timeout=60.0,
            resource_interval=0.15,
            heartbeat_grace=0.3,
            telemetry=telemetry,
        )
        results = run_grid(study, spec, policy=policy)
        assert results.complete
        assert telemetry.counters.get("fault.stall", 0) == 0


# ---------------------------------------------------------------------------
# analysis: timelines, prometheus, and the peak-RSS gate


def synthetic_trace(peak: float = 200.0) -> Trace:
    events = [
        {"type": "resource", "kind": "sample", "seq": 1, "rank": "parent",
         "t": 0.0, "rss_mb": 100.0, "cpu_s": 0.5, "gc": 3,
         "span": "grid/cell/prepare", "tga": "6tree"},
        {"type": "resource", "kind": "sample", "seq": 2, "rank": "w11",
         "t": 0.1, "rss_mb": peak, "cpu_s": 0.7, "gc": 4,
         "span": "cell/generate", "tga": "eip"},
        {"type": "resource", "kind": "sample", "seq": 3, "rank": "parent",
         "t": 0.2, "rss_mb": 150.0, "cpu_s": 0.9, "gc": 5},
        {"type": "resource", "kind": "watermark", "seq": 4, "level": "warn",
         "rank": "w11", "rss_mb": peak, "budget_mb": 256, "ratio": 0.78},
        {"type": "heartbeat", "seq": 5, "rank": "w11", "cpu_s": 0.7},
    ]
    return Trace(path="<synthetic>", events=events)


class TestResourceTimeline:
    def test_partition_and_ranks(self):
        timeline = ResourceTimeline.from_trace(synthetic_trace())
        assert bool(timeline)
        assert len(timeline.samples) == 3
        assert len(timeline.watermarks) == 1
        assert len(timeline.heartbeats) == 1
        assert timeline.ranks == ["parent", "w11"]
        assert len(timeline.series("parent")) == 2

    def test_peaks_and_attribution(self):
        timeline = ResourceTimeline.from_trace(synthetic_trace())
        assert timeline.peak_rss_mb == 200.0
        assert timeline.peak_by_phase() == {
            "generate": 200.0,
            "(idle)": 150.0,
            "prepare": 100.0,
        }
        assert timeline.peak_by_tga() == {"eip": 200.0, "6tree": 100.0}

    def test_summary_shape(self):
        summary = ResourceTimeline.from_trace(synthetic_trace()).summary()
        assert summary["samples"] == 3
        assert summary["peak_rss_mb"] == 200.0
        assert summary["watermarks"][0]["level"] == "warn"
        assert summary["heartbeats"] == 1

    def test_empty_trace_is_falsy(self):
        timeline = ResourceTimeline.from_trace(Trace(path="<empty>", events=[]))
        assert not timeline
        assert timeline.peak_rss_mb == 0.0

    def test_trace_peak_prefers_merged_gauge(self):
        trace = synthetic_trace()
        assert trace_peak_rss_mb(trace) == 200.0  # event scan fallback
        trace.snapshot = {"gauges": {"resource.peak_rss_mb": 512.0}}
        assert trace_peak_rss_mb(trace) == 512.0


class TestPrometheusResourceExport:
    def test_help_and_type_lines_for_resource_gauges(self):
        text = to_prometheus_text(
            {
                "counters": {"resource.samples": 5, "heartbeat.beats": 4},
                "gauges": {"resource.peak_rss_mb": 123.5},
            }
        )
        assert "# HELP repro_resource_samples_total" in text
        assert "# TYPE repro_resource_samples_total counter" in text
        assert "# HELP repro_resource_peak_rss_mb" in text
        assert "# TYPE repro_resource_peak_rss_mb gauge" in text
        assert "repro_resource_peak_rss_mb 123.5" in text
        assert "repro_heartbeat_beats_total 4" in text

    def test_every_family_gets_a_help_line(self):
        text = to_prometheus_text({"counters": {"scan.probes": 1, "custom.x": 2}})
        helps = [line for line in text.splitlines() if line.startswith("# HELP")]
        types = [line for line in text.splitlines() if line.startswith("# TYPE")]
        assert len(helps) == len(types) == 2

    def test_span_label_values_escaped(self):
        tel = Telemetry()
        with tel.span('grid "odd"'):
            with tel.span("sub\\cell"):
                pass
        text = to_prometheus_text(tel.snapshot())
        assert '\\"odd\\"' in text
        assert "sub\\\\cell" in text


class TestPeakRssGate:
    """`repro trace check` must fail a synthetic 10x RSS inflation and
    pass a trace against itself."""

    def record_trace(self, tmp_path, name: str) -> str:
        from repro.cli import main as cli_main

        path = tmp_path / name
        status = cli_main(
            [
                "--scale", "tiny", "--budget", "300",
                "--telemetry", str(path),
                "--sample-resources", "0.05",
                "grid", "--tgas", "6tree", "--ports", "icmp",
            ]
        )
        assert status == 0
        return str(path)

    def inflate(self, path: str, factor: float) -> str:
        inflated = path.replace(".jsonl", ".inflated.jsonl")
        with open(path, encoding="utf-8") as src, open(
            inflated, "w", encoding="utf-8"
        ) as dst:
            for line in src:
                record = json.loads(line)
                if record.get("type") == "snapshot":
                    gauges = record.setdefault("gauges", {})
                    for key in ("resource.peak_rss_mb", "resource.rss_mb"):
                        if key in gauges:
                            gauges[key] = round(gauges[key] * factor, 2)
                dst.write(json.dumps(record) + "\n")
        return inflated

    def test_gate_passes_against_self_and_fails_10x_inflation(self, tmp_path):
        from repro.cli import main as cli_main

        trace = self.record_trace(tmp_path, "base.trace.jsonl")
        assert (
            cli_main(["trace", "check", trace, "--baseline", trace]) == 0
        )
        inflated = self.inflate(trace, 10.0)
        assert (
            cli_main(["trace", "check", inflated, "--baseline", trace]) == 1
        )

    def test_rss_gate_inactive_without_resource_data(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        from repro.telemetry import JsonlSink

        path = tmp_path / "plain.trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        with tel.span("grid"):
            tel.count("scan.probes", 3)
        tel.close()
        assert (
            cli_main(["trace", "check", str(path), "--baseline", str(path)]) == 0
        )
        out = capsys.readouterr().out
        assert "peak RSS" not in out


# ---------------------------------------------------------------------------
# nondeterministic names stay out of deterministic diffs


class TestNondeterministicFiltering:
    def test_resource_names_never_count_as_regressions(self, tmp_path):
        from repro.telemetry import JsonlSink, diff_traces, load_trace

        paths = []
        for rss in (100.0, 900.0):
            path = tmp_path / f"t{rss}.jsonl"
            tel = Telemetry(sinks=[JsonlSink(path)])
            with tel.span("grid"):
                tel.count("scan.probes", 5)
                tel.count("resource.samples", int(rss))
                tel.gauge("resource.peak_rss_mb", rss)
            tel.close()
            paths.append(path)
        diff = diff_traces(load_trace(paths[0]), load_trace(paths[1]))
        assert diff.regressions() == []
        assert NONDETERMINISTIC_PREFIXES == ("resource.", "heartbeat.")
