"""Tests for repro.scanner.blocklist."""

from repro.addr import Prefix, parse_address
from repro.scanner import Blocklist


class TestBlocklist:
    def test_empty_blocks_nothing(self):
        blocklist = Blocklist()
        assert len(blocklist) == 0
        assert not blocklist.is_blocked(parse_address("2001:db8::1"))

    def test_blocked_prefix(self):
        blocklist = Blocklist([Prefix.parse("2001:db8::/32")])
        assert blocklist.is_blocked(parse_address("2001:db8:ffff::1"))
        assert not blocklist.is_blocked(parse_address("2001:db9::1"))

    def test_add_text(self):
        blocklist = Blocklist()
        blocklist.add_text("2400::/16")
        assert blocklist.is_blocked(parse_address("2400:abcd::1"))

    def test_contains_operator(self):
        blocklist = Blocklist([Prefix.parse("2001:db8::/32")])
        assert parse_address("2001:db8::5") in blocklist

    def test_idempotent_add(self):
        blocklist = Blocklist()
        blocklist.add_text("2001:db8::/32")
        blocklist.add_text("2001:db8::/32")
        assert len(blocklist) == 1

    def test_prefixes_listing(self):
        blocklist = Blocklist([Prefix.parse("2001:db8::/32"), Prefix.parse("2400::/16")])
        assert set(map(str, blocklist.prefixes())) == {"2001:db8::/32", "2400::/16"}

    def test_nested_prefixes(self):
        blocklist = Blocklist([Prefix.parse("2001:db8::/32"), Prefix.parse("2001:db8:1::/48")])
        assert blocklist.is_blocked(parse_address("2001:db8:1::1"))
        assert blocklist.is_blocked(parse_address("2001:db8:2::1"))


class TestFromLines:
    def test_parses_and_skips_comments(self):
        lines = [
            "# test blocklist",
            "2001:db8::/32  # docs range",
            "",
            "2400::/16",
        ]
        blocklist = Blocklist.from_lines(lines)
        assert len(blocklist) == 2
        assert blocklist.is_blocked(parse_address("2001:db8::1"))
        assert blocklist.is_blocked(parse_address("2400::1"))

    def test_blank_only(self):
        assert len(Blocklist.from_lines(["", "# nothing"])) == 0
