"""Tests for repro.addr.trie."""

from repro.addr import Prefix, PrefixTrie, parse_address


def P(text: str) -> Prefix:
    return Prefix.parse(text)


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert not trie
        assert trie.lookup(0) is None
        assert not trie.covers(0)

    def test_insert_and_lookup(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), "a")
        assert trie.lookup(parse_address("2001:db8::1")) == "a"
        assert trie.lookup(parse_address("2001:db9::1")) is None
        assert len(trie) == 1

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), 1)
        trie.insert(P("2001:db8::/32"), 2)
        assert trie.lookup(parse_address("2001:db8::1")) == 2
        assert len(trie) == 1

    def test_root_prefix(self):
        trie = PrefixTrie()
        trie.insert(P("::/0"), "default")
        assert trie.lookup(parse_address("ffff::1")) == "default"


class TestLongestMatch:
    def test_more_specific_wins(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), "short")
        trie.insert(P("2001:db8:1::/48"), "long")
        assert trie.lookup(parse_address("2001:db8:1::1")) == "long"
        assert trie.lookup(parse_address("2001:db8:2::1")) == "short"

    def test_longest_match_returns_prefix(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), "x")
        match = trie.longest_match(parse_address("2001:db8::42"))
        assert match is not None
        prefix, value = match
        assert prefix == P("2001:db8::/32")
        assert value == "x"

    def test_host_route(self):
        trie = PrefixTrie()
        host = parse_address("2001:db8::1")
        trie.insert(Prefix(host, 128), "host")
        trie.insert(P("2001:db8::/32"), "net")
        assert trie.lookup(host) == "host"
        assert trie.lookup(host + 1) == "net"


class TestExact:
    def test_get_exact_present(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), 9)
        assert trie.get_exact(P("2001:db8::/32")) == 9

    def test_get_exact_absent_shorter(self):
        trie = PrefixTrie()
        trie.insert(P("2001:db8::/32"), 9)
        assert trie.get_exact(P("2001:db8::/48")) is None
        assert trie.get_exact(P("2001::/16")) is None


class TestEnumeration:
    def test_items_in_address_order(self):
        trie = PrefixTrie()
        prefixes = [P("2001:db9::/32"), P("2001:db8::/32"), P("2001:db8:1::/48")]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        listed = trie.prefixes()
        assert listed == sorted(prefixes)

    def test_items_values_match(self):
        trie = PrefixTrie()
        trie.insert(P("2400::/16"), "apnic")
        trie.insert(P("2600::/16"), "arin")
        assert dict((str(p), v) for p, v in trie.items()) == {
            "2400::/16": "apnic",
            "2600::/16": "arin",
        }


class TestAgainstNaive:
    def test_matches_naive_lpm(self):
        """The trie must agree with a brute-force longest-prefix match."""
        from repro.addr.rand import DeterministicStream

        stream = DeterministicStream(0xBEEF)
        prefixes = []
        trie = PrefixTrie()
        for index in range(60):
            length = 16 + stream.next_below(80)
            value = stream.next_address_bits(128)
            prefix = Prefix.of(value, length)
            prefixes.append(prefix)
            trie.insert(prefix, index)

        def naive(address: int):
            best = None
            for index, prefix in enumerate(prefixes):
                if prefix.contains(address):
                    if best is None or prefix.length > prefixes[best].length:
                        best = index
            return best

        for _ in range(300):
            address = stream.next_address_bits(128)
            expected = naive(address)
            actual = trie.lookup(address)
            if expected is None:
                assert actual is None
            else:
                # Several inserted prefixes may be identical (value, length);
                # match on the prefix geometry, not insertion index.
                assert actual is not None
                assert prefixes[actual].contains(address)
                assert prefixes[actual].length == prefixes[expected].length
