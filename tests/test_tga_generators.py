"""Behavioural tests for the eight generators.

Each generator is exercised on a structured synthetic seed set where the
"right" generalisations are known, plus shared contract tests (fresh
unique addresses, determinism, budget interface).
"""

import pytest

from repro.addr import parse_address
from repro.tga import ALL_TGA_NAMES, create_tga
from repro.tga.entropy_ip import segment_boundaries


def A(text: str) -> int:
    return parse_address(text)


def structured_seeds() -> list[int]:
    """Two dense /64s plus scattered singletons across other /32s."""
    seeds = [A(f"2001:db8:0:1::{i:x}") for i in range(1, 25)]
    seeds += [A(f"2001:db8:0:2::{i:x}") for i in range(1, 25)]
    seeds += [A("2400:cb00:1::1"), A("2600:9000:1::1"), A("2a00:1450:1::1")]
    return seeds


@pytest.fixture(params=ALL_TGA_NAMES)
def generator(request):
    tga = create_tga(request.param)
    tga.prepare(structured_seeds())
    return tga


class TestSharedContract:
    def test_proposals_are_fresh(self, generator):
        seeds = set(structured_seeds())
        batch = generator.propose(200)
        assert batch, generator.name
        assert not set(batch) & seeds

    def test_proposals_unique_within_batch(self, generator):
        batch = generator.propose(300)
        assert len(batch) == len(set(batch))

    def test_proposals_are_valid_addresses(self, generator):
        for address in generator.propose(100):
            assert 0 <= address < 2**128

    def test_deterministic_across_instances(self, generator):
        other = create_tga(generator.name)
        other.prepare(structured_seeds())
        assert generator.propose(100) == other.propose(100)

    def test_observe_accepts_feedback(self, generator):
        batch = generator.propose(50)
        generator.observe({address: False for address in batch})
        # Must still be able to continue proposing.
        generator.propose(20)


class TestTreeFamilyGeneralisation:
    """The tree/cluster generators must find the obvious expansions."""

    @pytest.mark.parametrize("name", ["6tree", "6scan", "det", "6hit", "6gen", "6sense"])
    def test_extends_dense_run(self, name):
        tga = create_tga(name)
        tga.prepare(structured_seeds())
        proposals = set(tga.propose(3000))
        # IIDs just beyond the observed 1..24 run in the dense /64s.
        expected = {A("2001:db8:0:1::19"), A("2001:db8:0:2::19")}
        assert proposals & expected, name

    @pytest.mark.parametrize("name", ["6tree", "6scan", "det", "6graph", "6sense"])
    def test_generalises_to_sibling_subnet(self, name):
        """Subnets ::3: was never seeded; tree generalisation finds it."""
        tga = create_tga(name)
        tga.prepare(structured_seeds())
        proposals = set(tga.propose(5000))
        sibling = {A(f"2001:db8:0:3::{i:x}") for i in range(1, 25)}
        assert proposals & sibling, name


class TestSixTree:
    def test_density_first(self):
        """Early budget goes to the dense region, not the singletons."""
        tga = create_tga("6tree")
        tga.prepare(structured_seeds())
        first = tga.propose(30)
        dense = sum(1 for a in first if (a >> 96) == 0x20010DB8)
        assert dense > 15


class TestSixGen:
    def test_cluster_bound_to_slash48(self):
        """6Gen never invents new /32s — clusters cap at /48 scope."""
        tga = create_tga("6gen")
        tga.prepare(structured_seeds())
        seed_nets32 = {seed >> 96 for seed in structured_seeds()}
        for address in tga.propose(2000):
            assert (address >> 96) in seed_nets32


class TestEntropyIP:
    def test_segments_learned(self):
        tga = create_tga("eip")
        tga.prepare(structured_seeds())
        segments = tga.segments
        assert segments
        assert sum(length for _, length in segments) == 32

    def test_segment_boundaries_function(self):
        entropies = [0.0, 0.0, 2.0, 2.0, 0.1, 0.1]
        assert segment_boundaries(entropies, step=0.5) == [0, 2, 4]

    def test_samples_within_learned_structure(self):
        """Every sampled nybble value was observed at that position, but
        whole-address combinations may be novel mixtures — EIP's
        characteristic weakness (adjacent-segment conditioning only)."""
        tga = create_tga("eip")
        tga.prepare(structured_seeds())
        proposals = tga.propose(500)
        assert proposals
        from repro.addr.nybbles import get_nybble

        seeds = structured_seeds()
        observed_per_dim = [
            {get_nybble(seed, dim) for seed in seeds} for dim in range(32)
        ]
        for address in proposals[:100]:
            for dim in range(32):
                assert get_nybble(address, dim) in observed_per_dim[dim]

    def test_mixture_weakness_present(self):
        """EIP emits prefix mixtures no seed ever had — the failure mode
        behind its poor hit counts in the paper."""
        tga = create_tga("eip")
        tga.prepare(structured_seeds())
        proposals = tga.propose(500)
        seed_tops = {seed >> 112 for seed in structured_seeds()}
        assert any((address >> 112) not in seed_tops for address in proposals)

    def test_exhaustion_returns_short(self):
        tga = create_tga("eip")
        tga.prepare([A("2001:db8::1"), A("2001:db8::2")])
        batch = tga.propose(100_000)
        assert len(batch) < 100_000  # tiny model space caps output


class TestOnlineAdaptation:
    @pytest.mark.parametrize("name", ["det", "6scan", "6hit", "6sense"])
    def test_feedback_shifts_allocation(self, name):
        """Rewarding one /32 must shift subsequent proposals toward it."""
        tga = create_tga(name)
        tga.prepare(structured_seeds())
        rewarded_net = 0x24000CB0  # 2400:cb0... top 32 bits of 2400:cb00
        for _ in range(6):
            batch = tga.propose(300)
            if not batch:
                break
            tga.observe(
                {a: ((a >> 96) == rewarded_net) for a in batch}
            )
        final = tga.propose(400)
        if not final:
            pytest.skip("generator exhausted on this tiny seed set")
        rewarded_share = sum(1 for a in final if (a >> 96) == rewarded_net)
        # The rewarded region is 1 of 4 /32s but must get outsized budget.
        assert rewarded_share > len(final) // 4 or rewarded_share == 0


class TestSixSenseDealiasing:
    def test_suppresses_saturated_prefix(self):
        """Feeding 6Sense a fully responsive /96 triggers suppression."""
        tga = create_tga("6sense")
        tga.prepare(structured_seeds())
        suppressed_before = tga.suppressed_alias_prefixes
        for _ in range(12):
            batch = tga.propose(200)
            if not batch:
                break
            # Everything in 2001:db8:0:1::/96 "responds" — alias-like.
            tga.observe(
                {a: ((a >> 32) == (A("2001:db8:0:1::") >> 32)) for a in batch}
            )
        assert tga.suppressed_alias_prefixes >= suppressed_before
