"""Tests for repro.tga.base."""

import pytest

from repro.tga import (
    ALL_TGA_NAMES,
    TGA_TABLE1,
    TargetGenerator,
    create_tga,
    register_tga,
    tga_class,
)


class TestRegistry:
    def test_all_eight_registered(self):
        for name in ALL_TGA_NAMES:
            assert tga_class(name).name == name

    def test_create_tga(self):
        tga = create_tga("6tree")
        assert tga.name == "6tree"
        assert not tga.online

    def test_online_flags(self):
        online = {name for name in ALL_TGA_NAMES if create_tga(name).online}
        assert online == {"6sense", "det", "6scan", "6hit"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            tga_class("7tree")

    def test_duplicate_registration_rejected(self):
        class Fake(TargetGenerator):
            name = "6tree"

            def _ingest(self, seeds):
                pass

            def propose(self, count):
                return []

        with pytest.raises(ValueError):
            register_tga(Fake)

    def test_unnamed_registration_rejected(self):
        class Nameless(TargetGenerator):
            def _ingest(self, seeds):
                pass

            def propose(self, count):
                return []

        with pytest.raises(ValueError):
            register_tga(Nameless)


class TestLifecycle:
    def test_propose_before_prepare_raises(self):
        tga = create_tga("6tree")
        with pytest.raises(RuntimeError):
            tga.propose(10)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            create_tga("6tree").prepare([])

    def test_repr_mentions_mode(self):
        assert "offline" in repr(create_tga("6gen"))
        assert "online" in repr(create_tga("det"))

    def test_observe_default_noop(self):
        tga = create_tga("6tree")
        tga.prepare([1, 2, 3])
        tga.observe({1: True})  # must not raise


class TestTable1:
    def test_eight_rows(self):
        assert len(TGA_TABLE1) == 8
        assert {row.name for row in TGA_TABLE1} == set(ALL_TGA_NAMES)

    def test_6sense_only_online_dealiasing(self):
        """Table 1: only 6Sense historically used online dealiasing."""
        for row in TGA_TABLE1:
            assert row.online_dealiasing == (row.name == "6sense")

    def test_6gen_eip_use_raw_data(self):
        for row in TGA_TABLE1:
            if row.name in ("6gen", "eip"):
                assert row.uses_all and row.no_dealiasing and row.include_inactive
            else:
                assert row.offline_dealiasing

    def test_only_6scan_port_specific(self):
        for row in TGA_TABLE1:
            assert row.port_specific == (row.name == "6scan")
