"""Tests for repro.metrics.core."""

import pytest

from repro.internet import Port
from repro.metrics import MetricSet, evaluate_metrics, filter_mega_isp


class TestMetricSet:
    def test_metric_by_name(self):
        metrics = MetricSet(hits=10, ases=3, aliases=2)
        assert metrics.metric("hits") == 10
        assert metrics.metric("ases") == 3
        assert metrics.metric("aliases") == 2

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            MetricSet(1, 1).metric("latency")

    def test_as_dict(self):
        assert MetricSet(5, 4, 3).as_dict() == {"hits": 5, "ases": 4, "aliases": 3}

    def test_frozen(self):
        metrics = MetricSet(1, 1)
        with pytest.raises(AttributeError):
            metrics.hits = 2


class TestMegaFilter:
    def test_filters_on_icmp(self, internet):
        mega = next(
            r for r in internet.regions if r.asn == internet.mega_isp_asn
        )
        normal = next(
            r for r in internet.regions if r.asn != internet.mega_isp_asn
        )
        addresses = {mega.address_of(1), normal.address_of(1)}
        kept = filter_mega_isp(
            addresses, internet.registry, internet.mega_isp_asn, Port.ICMP
        )
        assert kept == {normal.address_of(1)}

    def test_noop_on_tcp(self, internet):
        mega = next(
            r for r in internet.regions if r.asn == internet.mega_isp_asn
        )
        addresses = {mega.address_of(1)}
        kept = filter_mega_isp(
            addresses, internet.registry, internet.mega_isp_asn, Port.TCP80
        )
        assert kept == addresses


class TestEvaluateMetrics:
    def test_counts(self, internet):
        regions = [r for r in internet.regions if r.asn != internet.mega_isp_asn]
        a, b = regions[0], regions[1]
        clean = {a.address_of(1), a.address_of(2), b.address_of(1)}
        aliased = {b.address_of(99)}
        metrics = evaluate_metrics(
            clean, aliased, internet.registry, Port.ICMP, internet.mega_isp_asn
        )
        assert metrics.hits == 3
        assert metrics.ases == len({a.asn, b.asn})
        assert metrics.aliases == 1

    def test_mega_excluded_from_icmp_hits_and_ases(self, internet):
        mega = next(r for r in internet.regions if r.asn == internet.mega_isp_asn)
        metrics = evaluate_metrics(
            {mega.address_of(1)},
            set(),
            internet.registry,
            Port.ICMP,
            internet.mega_isp_asn,
        )
        assert metrics.hits == 0
        assert metrics.ases == 0

    def test_no_mega_filter_when_none(self, internet):
        mega = next(r for r in internet.regions if r.asn == internet.mega_isp_asn)
        metrics = evaluate_metrics(
            {mega.address_of(1)}, set(), internet.registry, Port.ICMP, None
        )
        assert metrics.hits == 1
