"""Tests for multi-epoch churn and dataset decay curves."""

import math

from repro.analysis import decay_curve
from repro.internet import Port


class TestMultiEpochChurn:
    def test_epoch_zero_and_one_unchanged(self, internet):
        """The compounding extension must not disturb epochs 0 and 1."""
        region = next(
            r for r in internet.regions
            if not r.aliased and not r.retired and 0 < r.churn_rate < 0.5
            and r.density > 20
        )
        e0 = region.responsive_iids(Port.ICMP, 0)
        e1 = region.responsive_iids(Port.ICMP, 1)
        assert e1 <= e0

    def test_monotone_decay(self, internet):
        region = next(
            r for r in internet.regions
            if not r.aliased and not r.retired and r.churn_rate > 0.05
            and r.density > 30
        )
        sets = [region.responsive_iids(Port.ICMP, epoch) for epoch in range(6)]
        for before, after in zip(sets, sets[1:]):
            assert after <= before

    def test_high_churn_decays_fast(self, internet):
        renumbered = next(
            r for r in internet.regions
            if not r.aliased and r.churn_rate > 0.9 and r.density > 10
        )
        assert len(renumbered.responsive_iids(Port.ICMP, 3)) <= max(
            1, len(renumbered.responsive_iids(Port.ICMP, 0)) // 10
        )

    def test_probe_respects_later_epochs(self, internet):
        from repro.scanner import Scanner

        early = Scanner(internet, epoch=1)
        late = Scanner(internet, epoch=5)
        targets = sorted(internet.iter_responsive(Port.ICMP, 1))[:2000]
        early_hits = early.scan(targets, Port.ICMP).num_hits
        late_hits = late.scan(targets, Port.ICMP).num_hits
        assert late_hits < early_hits == len(targets)


class TestDecayCurve:
    def test_curve_monotone_nonincreasing(self, internet, collection):
        curve = decay_curve(internet, collection["hitlist"], epochs=4)
        assert len(curve.fractions) == 5
        for before, after in zip(curve.fractions, curve.fractions[1:]):
            assert after <= before + 1e-12

    def test_fractions_bounded(self, internet, collection):
        curve = decay_curve(internet, collection["censys"], epochs=3)
        assert all(0.0 <= f <= 1.0 for f in curve.fractions)

    def test_survival_rate_bounds(self, internet, collection):
        curve = decay_curve(internet, collection["ripe_atlas"], epochs=3)
        assert 0.0 < curve.mean_survival_rate <= 1.0

    def test_half_life(self, internet, collection):
        curve = decay_curve(internet, collection["hitlist"], epochs=2)
        assert curve.half_life_epochs > 0

    def test_negative_epochs_rejected(self, internet, collection):
        import pytest

        with pytest.raises(ValueError):
            decay_curve(internet, collection["hitlist"], epochs=-1)
