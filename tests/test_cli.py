"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

from .golden_telemetry import GOLDEN_PATH


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.scale == "tiny"
        assert args.seed == 42
        assert args.budget == 2500

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "6tree", "--port", "tcp80", "--dataset", "joint"]
        )
        assert args.tga == "6tree"
        assert args.port == "tcp80"
        assert args.dataset == "joint"

    def test_invalid_tga_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "7tree"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "planetary", "describe"])


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "regions" in out
        assert "ases" in out

    def test_sources_with_export(self, capsys, tmp_path):
        export = tmp_path / "sources.json"
        assert main(["--export", str(export), "sources"]) == 0
        rows = json.loads(export.read_text())
        assert len(rows) == 12
        assert {"source", "kind", "unique", "ases"} <= set(rows[0])

    def test_run_cell(self, capsys):
        assert main(["--budget", "400", "run", "6gen", "--port", "icmp"]) == 0
        out = capsys.readouterr().out
        assert "hits" in out
        assert "6gen" in out

    def test_run_export_csv(self, tmp_path, capsys):
        export = tmp_path / "run.csv"
        assert (
            main(["--budget", "400", "--export", str(export), "run", "6tree"]) == 0
        )
        header = export.read_text().splitlines()[0]
        assert "tga" in header and "hits" in header

    def test_rq4(self, capsys):
        assert main(["--budget", "400", "rq4", "--port", "icmp"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out.lower()

    def test_recommend(self, capsys):
        assert main(["--budget", "400", "recommend", "--port", "udp53"]) == 0
        out = capsys.readouterr().out
        assert "ENSEMBLE" in out


class TestNewCommands:
    def test_rq3(self, capsys):
        assert (
            main(["--budget", "400", "rq3", "--sources", "censys,scamper"]) == 0
        )
        out = capsys.readouterr().out
        assert "pooled" in out

    def test_overlap_heatmap(self, capsys):
        assert main(["overlap", "--by", "ip"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_convergence(self, capsys):
        assert main(["--budget", "400", "convergence", "6gen"]) == 0
        out = capsys.readouterr().out
        assert "budget to 50% yield" in out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--budget", "300", "report", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Seeds of Scanning")
        assert "RQ1.a" in text and "RQ5" in text


class TestNounVerbCLI:
    def test_study_run_parses(self):
        args = build_parser().parse_args(
            ["study", "run", "6tree", "--port", "tcp80", "--dataset", "joint"]
        )
        assert args.command == "study"
        assert args.command_name == "study run"
        assert args.tga == "6tree"
        assert args.port == "tcp80"

    def test_new_spelling_runs_without_deprecation(self, capsys):
        assert main(["world", "describe"]) == 0
        captured = capsys.readouterr()
        assert "regions" in captured.out
        assert "deprecated" not in captured.err

    def test_legacy_alias_still_works_but_warns(self, capsys):
        assert main(["describe"]) == 0
        captured = capsys.readouterr()
        assert "regions" in captured.out
        assert "deprecated" in captured.err
        assert "repro world describe" in captured.err

    def test_legacy_run_warns_with_new_spelling(self, capsys):
        assert main(["--budget", "400", "run", "6gen"]) == 0
        assert "repro study run" in capsys.readouterr().err

    def test_legacy_aliases_are_hidden_from_help(self):
        help_text = build_parser().format_help()
        leading = [
            line.split()[0] for line in help_text.splitlines() if line.split()
        ]
        for old in ("describe", "sources", "run", "grid", "rq1a", "recommend"):
            assert old not in leading
        for noun in ("world", "study", "serve", "trace", "top"):
            assert noun in leading

    def test_study_resume_reruns_from_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "grid.jsonl"
        assert (
            main(
                ["--budget", "400", "--checkpoint", str(checkpoint),
                 "study", "grid", "--tgas", "6gen"]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert checkpoint.exists()
        assert (
            main(
                ["--budget", "400", "study", "resume", str(checkpoint),
                 "--tgas", "6gen"]
            )
            == 0
        )
        assert capsys.readouterr().out == first

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command_name == "serve"
        assert args.http_port == 8674
        assert args.pool == 2
        assert args.max_queue == 64
        assert args.rate == 50.0

    def test_manifest_records_the_noun_verb_command(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                ["--budget", "400", "--telemetry", str(trace),
                 "study", "run", "6gen"]
            )
            == 0
        )
        manifest = json.loads(trace.read_text().splitlines()[0])
        assert manifest["command"] == "study run"


def run_traced(tmp_path, name, extra=(), budget="400"):
    """Run a tiny cell with --telemetry and return the trace path."""
    trace = tmp_path / name
    argv = [
        "--budget", budget, "--telemetry", str(trace),
        *extra, "run", "6gen", "--port", "icmp",
    ]
    assert main(argv) == 0
    return trace


class TestTelemetryFlags:
    def test_trace_opens_with_manifest_and_ends_with_snapshot(
        self, tmp_path, capsys
    ):
        trace = run_traced(tmp_path, "trace.jsonl")
        assert "wrote telemetry trace" in capsys.readouterr().err
        lines = trace.read_text(encoding="utf-8").splitlines()
        manifest = json.loads(lines[0])
        assert manifest["type"] == "manifest"
        assert manifest["master_seed"] == 42
        assert manifest["scale"] == "tiny"
        assert manifest["config_hash"].startswith("sha256:")
        assert json.loads(lines[-1])["type"] == "snapshot"
        assert any(json.loads(line)["type"] == "cell" for line in lines[1:-1])

    def test_telemetry_summary_goes_to_stderr(self, capsys):
        assert (
            main(
                ["--budget", "400", "--telemetry-summary", "run", "6gen",
                 "--port", "icmp"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "counters" in captured.err and "spans" in captured.err
        assert "counters" not in captured.out  # the run table stays clean

    def test_fixed_seed_traces_are_byte_identical(self, tmp_path, capsys):
        a = run_traced(tmp_path, "a.jsonl")
        b = run_traced(tmp_path, "b.jsonl")
        assert a.read_bytes() == b.read_bytes()
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_progress_renders_but_leaves_the_trace_untouched(
        self, tmp_path, capsys
    ):
        plain = run_traced(tmp_path, "plain.jsonl")
        plain_stdout = capsys.readouterr().out
        shown = run_traced(tmp_path, "shown.jsonl", extra=("--progress",))
        captured = capsys.readouterr()
        assert shown.read_bytes() == plain.read_bytes()  # byte-identical
        assert captured.out == plain_stdout  # stdout untouched too
        assert "cells]" in captured.err
        assert "finished:" in captured.err

    def test_export_writes_manifest_sidecar(self, tmp_path, capsys):
        export = tmp_path / "rows.json"
        trace = tmp_path / "trace.jsonl"
        argv = [
            "--budget", "400", "--telemetry", str(trace),
            "--export", str(export), "run", "6gen", "--port", "icmp",
        ]
        assert main(argv) == 0
        sidecar = tmp_path / "rows.manifest.json"
        assert "manifest:" in capsys.readouterr().out
        manifest = json.loads(sidecar.read_text(encoding="utf-8"))
        assert manifest["master_seed"] == 42
        assert manifest["snapshot_digest"].startswith("sha256:")

    def test_export_sidecar_without_telemetry_has_no_snapshot(
        self, tmp_path, capsys
    ):
        export = tmp_path / "rows.json"
        assert (
            main(
                ["--budget", "400", "--export", str(export), "run", "6gen",
                 "--port", "icmp"]
            )
            == 0
        )
        manifest = json.loads(
            (tmp_path / "rows.manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["config_hash"].startswith("sha256:")
        assert "snapshot_digest" not in manifest


def inflate_counter(trace_path, out_path, factor=10):
    """Copy a JSONL trace, multiplying the first scan.* counter by ``factor``."""
    lines = []
    for line in trace_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if record.get("type") == "snapshot":
            name = next(k for k in record["counters"] if k.startswith("scan."))
            record["counters"][name] *= factor
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out_path


class TestTraceCommands:
    def test_summary_on_golden_fixture(self, capsys):
        assert main(["trace", "summary", str(GOLDEN_PATH)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "Counters" in out
        assert "tga.rounds" in out

    def test_summary_on_recorded_run(self, tmp_path, capsys):
        trace = run_traced(tmp_path, "trace.jsonl")
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "master_seed=42" in out
        assert "config: sha256:" in out
        # The opening manifest is written before the run so it cannot
        # carry a final-snapshot digest; only export sidecars do.
        assert "snapshot: sha256:" not in out

    def test_attribution_on_golden_fixture(self, capsys):
        assert main(["trace", "attribution", str(GOLDEN_PATH), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out and "dealias" in out
        assert "%" in out
        assert "total" in out

    def test_check_clean_against_itself(self, tmp_path, capsys):
        trace = run_traced(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert (
            main(["trace", "check", str(trace), "--baseline", str(trace)]) == 0
        )
        assert "OK:" in capsys.readouterr().out

    def test_check_fails_on_inflated_counters(self, tmp_path, capsys):
        baseline = run_traced(tmp_path, "baseline.jsonl")
        inflated = inflate_counter(baseline, tmp_path / "inflated.jsonl")
        capsys.readouterr()
        assert (
            main(["trace", "check", str(inflated), "--baseline", str(baseline)])
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_tolerance_admits_the_drift(self, tmp_path, capsys):
        baseline = run_traced(tmp_path, "baseline.jsonl")
        inflated = inflate_counter(baseline, tmp_path / "inflated.jsonl")
        assert (
            main(
                ["trace", "check", str(inflated), "--baseline", str(baseline),
                 "--rel-tol", "100"]
            )
            == 0
        )

    def test_diff_detects_budget_change(self, tmp_path, capsys):
        small = run_traced(tmp_path, "small.jsonl", budget="400")
        large = run_traced(tmp_path, "large.jsonl", budget="800")
        capsys.readouterr()
        assert main(["trace", "diff", str(large), str(small)]) == 1
        out = capsys.readouterr().out
        assert "figures differ" in out

    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])
