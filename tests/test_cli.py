"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.scale == "tiny"
        assert args.seed == 42
        assert args.budget == 2500

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "6tree", "--port", "tcp80", "--dataset", "joint"]
        )
        assert args.tga == "6tree"
        assert args.port == "tcp80"
        assert args.dataset == "joint"

    def test_invalid_tga_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "7tree"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "planetary", "describe"])


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "regions" in out
        assert "ases" in out

    def test_sources_with_export(self, capsys, tmp_path):
        export = tmp_path / "sources.json"
        assert main(["--export", str(export), "sources"]) == 0
        rows = json.loads(export.read_text())
        assert len(rows) == 12
        assert {"source", "kind", "unique", "ases"} <= set(rows[0])

    def test_run_cell(self, capsys):
        assert main(["--budget", "400", "run", "6gen", "--port", "icmp"]) == 0
        out = capsys.readouterr().out
        assert "hits" in out
        assert "6gen" in out

    def test_run_export_csv(self, tmp_path, capsys):
        export = tmp_path / "run.csv"
        assert (
            main(["--budget", "400", "--export", str(export), "run", "6tree"]) == 0
        )
        header = export.read_text().splitlines()[0]
        assert "tga" in header and "hits" in header

    def test_rq4(self, capsys):
        assert main(["--budget", "400", "rq4", "--port", "icmp"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out.lower()

    def test_recommend(self, capsys):
        assert main(["--budget", "400", "recommend", "--port", "udp53"]) == 0
        out = capsys.readouterr().out
        assert "ENSEMBLE" in out


class TestNewCommands:
    def test_rq3(self, capsys):
        assert (
            main(["--budget", "400", "rq3", "--sources", "censys,scamper"]) == 0
        )
        out = capsys.readouterr().out
        assert "pooled" in out

    def test_overlap_heatmap(self, capsys):
        assert main(["overlap", "--by", "ip"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_convergence(self, capsys):
        assert main(["--budget", "400", "convergence", "6gen"]) == 0
        out = capsys.readouterr().out
        assert "budget to 50% yield" in out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--budget", "300", "report", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Seeds of Scanning")
        assert "RQ1.a" in text and "RQ5" in text
