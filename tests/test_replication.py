"""Tests for multi-world replication (repro.experiments.replication)."""

import math

import pytest

from repro.experiments import ReplicatedRatio, replicate_ratio
from repro.internet import InternetConfig, Port


class TestReplicatedRatio:
    def test_statistics(self):
        ratio = ReplicatedRatio(label="x", values=(0.5, 1.0, -0.25))
        assert ratio.mean == pytest.approx((0.5 + 1.0 - 0.25) / 3)
        assert ratio.minimum == -0.25
        assert ratio.maximum == 1.0
        assert ratio.sign_consistency == pytest.approx(2 / 3)

    def test_empty(self):
        ratio = ReplicatedRatio(label="x", values=())
        assert ratio.mean == 0.0
        assert ratio.sign_consistency == 0.0

    def test_infinite_values_skipped_in_mean(self):
        ratio = ReplicatedRatio(label="x", values=(math.inf, 1.0))
        assert ratio.mean == 1.0

    def test_all_same_sign(self):
        assert ReplicatedRatio("x", (0.1, 0.2, 0.3)).sign_consistency == 1.0


class TestReplicateRatio:
    @pytest.fixture(scope="class")
    def dealias_effect(self):
        return replicate_ratio(
            label="joint-dealias vs full (hits)",
            changed_dataset=lambda s: s.constructions.joint_dealiased,
            original_dataset=lambda s: s.constructions.full,
            tga_name="6tree",
            port=Port.ICMP,
            metric="hits",
            worlds=2,
            base_config=InternetConfig.tiny(),
            budget=800,
        )

    def test_one_value_per_world(self, dealias_effect):
        assert len(dealias_effect.values) == 2

    def test_values_finite_or_inf(self, dealias_effect):
        for value in dealias_effect.values:
            assert not math.isnan(value)

    def test_different_worlds_give_different_values(self, dealias_effect):
        # Two independent worlds almost surely differ in the exact ratio.
        assert len(set(dealias_effect.values)) > 1

    def test_deterministic_given_seeds(self):
        kwargs = dict(
            label="x",
            changed_dataset=lambda s: s.constructions.all_active,
            original_dataset=lambda s: s.constructions.joint_dealiased,
            worlds=1,
            budget=500,
            base_config=InternetConfig.tiny(),
        )
        a = replicate_ratio(**kwargs)
        b = replicate_ratio(**kwargs)
        assert a.values == b.values
