"""Tests for fault-tolerant, resumable grid execution.

Covers the RunStore checkpoint format (v2 JSONL, v1 auto-detect, torn
lines, digest verification), the ExecutionPolicy surface and its
legacy-kwarg compatibility shims, deterministic fault injection, and
the headline property: a grid interrupted by worker crashes and resumed
from its checkpoint yields results bit-identical to an uninterrupted
run, without ever re-executing completed cells.
"""

import json
import warnings

import pytest

from repro.experiments import (
    ExecutionPolicy,
    FaultInjected,
    FaultPlan,
    FaultRule,
    GridSpec,
    ParallelExecutor,
    RunStore,
    Study,
    dump_results,
    load_results,
    run_grid,
    study_digest,
)
from repro.internet import InternetConfig, Port
from repro.telemetry import MemorySink, Telemetry, strip_variant_events, use_telemetry

TGAS = ("6tree", "6gen", "eip")
BUDGET = 400


def make_study() -> Study:
    return Study(config=InternetConfig.tiny(), budget=500, round_size=200)


def make_spec(study: Study, ports=(Port.ICMP,)) -> GridSpec:
    return GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=TGAS,
        ports=ports,
        budget=BUDGET,
    )


def run_one(study: Study) -> "tuple":
    """One computed cell (key, result) for store tests."""
    dataset = study.constructions.all_active
    result = study.run("6tree", dataset, Port.ICMP, budget=BUDGET)
    return ("6tree", dataset.name, Port.ICMP, BUDGET), result


# ---------------------------------------------------------------------------
# RunStore: the v2 checkpoint format
# ---------------------------------------------------------------------------


class TestRunStore:
    def test_append_and_reload_roundtrip(self, tmp_path):
        study = make_study()
        key, result = run_one(study)
        path = tmp_path / "cp.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result)
        reloaded = RunStore(path)
        assert reloaded.load() == 1
        assert reloaded.get(key) == result
        assert key in reloaded
        assert reloaded.config == study_digest(study)

    def test_header_written_once_and_verified(self, tmp_path):
        study = make_study()
        key, result = run_one(study)
        path = tmp_path / "cp.jsonl"
        digest = study_digest(study)
        with RunStore(path) as store:
            store.begin(config=digest)
            store.append(key, result)
        # A second session appends without rewriting the header.
        again = RunStore(path)
        again.load()
        with again:
            again.begin(config=digest)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == 3
        assert sum(1 for line in lines if '"format"' in line) == 1
        again2 = RunStore(path)
        again2.load()
        again2.verify(digest)

    def test_verify_rejects_different_world(self, tmp_path):
        study = make_study()
        key, result = run_one(study)
        path = tmp_path / "cp.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result)
        other = Study(config=InternetConfig.tiny(master_seed=7), budget=500)
        reloaded = RunStore(path)
        reloaded.load()
        with pytest.raises(ValueError, match="different"):
            reloaded.verify(study_digest(other))

    def test_verify_rejects_missing_digest(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        with RunStore(path) as store:
            store.begin()  # no config digest recorded
        reloaded = RunStore(path)
        reloaded.load()
        with pytest.raises(ValueError, match="no config digest"):
            reloaded.verify("sha256:anything")

    def test_torn_final_line_is_dropped(self, tmp_path):
        study = make_study()
        key, result = run_one(study)
        path = tmp_path / "cp.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result)
            store.append(key, result)
        # Simulate a crash mid-append: truncate the last record.
        text = path.read_text()
        path.write_text(text[: len(text) - 30])
        reloaded = RunStore(path)
        assert reloaded.load() == 1
        assert reloaded.dropped == 1

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        study = make_study()
        key, result = run_one(study)
        path = tmp_path / "cp.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{corrupt\n")
            handle.write(
                json.dumps({"key": list(key[:2]) + [key[2].value, key[3]],
                            "result": {}}) + "\n"
            )
        with pytest.raises(ValueError, match="corrupt"):
            RunStore(path).load()

    def test_v1_checkpoint_autodetected_and_readonly(self, tmp_path):
        study = make_study()
        _, result = run_one(study)
        path = tmp_path / "old.json"
        from repro.experiments.store import result_to_dict

        path.write_text(
            json.dumps({"format": 1, "results": [result_to_dict(result)]})
        )
        store = RunStore(path)
        assert store.load() == 1
        assert store.results() == [result]
        with pytest.raises(ValueError, match="read-only"):
            store.begin()

    def test_dump_and_load_are_runstore_wrappers(self, tmp_path):
        study = make_study()
        _, result = run_one(study)
        path = tmp_path / "results.jsonl"
        assert dump_results(path, [result, result]) == 2
        assert load_results(path) == [result, result]  # order and duplicates
        assert json.loads(path.read_text().splitlines()[0])["format"] == 3


# ---------------------------------------------------------------------------
# ExecutionPolicy: validation and the removed legacy kwargs
# ---------------------------------------------------------------------------


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(workers="many")
        with pytest.raises(ValueError):
            ExecutionPolicy(chunksize=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(cell_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        assert ExecutionPolicy(workers="auto").workers == "auto"

    def test_resilient_property(self):
        assert not ExecutionPolicy().resilient
        assert not ExecutionPolicy(workers=8).resilient
        assert ExecutionPolicy(checkpoint="cp.jsonl").resilient
        assert ExecutionPolicy(fault_plan=FaultPlan()).resilient
        assert ExecutionPolicy(cell_timeout=5.0).resilient

    def test_run_grid_workers_kwarg_raises(self):
        study = make_study()
        spec = make_spec(study)
        with pytest.raises(TypeError, match="workers.*removed.*ExecutionPolicy"):
            run_grid(study, spec, workers=2)

    def test_run_matrix_parallel_kwarg_raises(self):
        study = make_study()
        with pytest.raises(TypeError, match="parallel.*removed"):
            study.run_matrix(
                [study.constructions.all_active],
                ports=(Port.ICMP,),
                tga_names=("6tree",),
                budget=BUDGET,
                parallel=2,
            )

    def test_telemetry_kwarg_raises(self):
        study = make_study()
        spec = make_spec(study)
        with pytest.raises(TypeError, match="telemetry.*removed"):
            run_grid(study, spec, telemetry=Telemetry())

    def test_telemetry_via_policy_is_honoured(self):
        study = make_study()
        spec = make_spec(study)
        telemetry = Telemetry()
        run_grid(study, spec, policy=ExecutionPolicy(telemetry=telemetry))
        assert telemetry.counters.get("meta.cache_misses", 0) > 0

    def test_policy_path_emits_no_deprecation_warning(self):
        study = make_study()
        spec = make_spec(study)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_grid(study, spec, policy=ExecutionPolicy())

    def test_error_names_both_removed_and_unknown_kwargs(self):
        from repro.experiments.policy import coalesce_policy

        with pytest.raises(TypeError, match="unexpected"):
            coalesce_policy(None, "api", bogus=3)
        with pytest.raises(TypeError, match="workers.*bogus"):
            coalesce_policy(None, "api", workers=2, bogus=3)


# ---------------------------------------------------------------------------
# FaultPlan: deterministic injection
# ---------------------------------------------------------------------------


class TestFaultPlan:
    KEY = ("6tree", "all-active", Port.ICMP, 400)

    def test_rule_matching_and_max_fires(self):
        rule = FaultRule("crash", tga="6tree", max_fires=2)
        assert rule.matches(self.KEY, attempt=0)
        assert rule.matches(self.KEY, attempt=1)
        assert not rule.matches(self.KEY, attempt=2)
        assert not rule.matches(("6gen",) + self.KEY[1:], attempt=0)

    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=5, rate=0.5)
        decisions = [plan.decide(self.KEY, attempt) for attempt in range(20)]
        assert decisions == [plan.decide(self.KEY, a) for a in range(20)]
        assert any(d is not None for d in decisions)
        assert any(d is None for d in decisions)

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=5, rate=0.0)
        assert all(plan.decide(self.KEY, a) is None for a in range(50))

    def test_inline_fire_raises_for_every_kind(self):
        for kind in ("crash", "stall", "exception"):
            plan = FaultPlan(rules=(FaultRule(kind),))
            with pytest.raises(FaultInjected) as err:
                plan.fire(self.KEY, attempt=0, allow_exit=False)
            assert err.value.kind == kind

    def test_parse_cli_spec(self):
        plan = FaultPlan.parse("crash:6gen:icmp:3")
        (rule,) = plan.rules
        assert (rule.kind, rule.tga, rule.port, rule.max_fires) == (
            "crash", "6gen", "icmp", 3,
        )
        # Aliases resolve; unknown names are rejected loudly.
        assert FaultPlan.parse("stall:entropy_ip").rules[0].tga == "eip"
        with pytest.raises(ValueError):
            FaultPlan.parse("meltdown:6gen")
        with pytest.raises(KeyError):
            FaultPlan.parse("crash:no-such-tga")

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("bogus")
        with pytest.raises(ValueError):
            FaultRule("crash", max_fires=0)
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)


# ---------------------------------------------------------------------------
# Serial fault tolerance (inline retries)
# ---------------------------------------------------------------------------


class TestSerialFaultTolerance:
    def test_retry_recovers_and_trace_matches_fault_free_run(self):
        baseline_study = make_study()
        spec = make_spec(baseline_study)
        baseline_sink = MemorySink()
        baseline = run_grid(
            baseline_study,
            spec,
            policy=ExecutionPolicy(telemetry=Telemetry(sinks=[baseline_sink])),
        )

        faulted_study = make_study()
        plan = FaultPlan(rules=(FaultRule("exception", tga="6gen"),))
        faulted_sink = MemorySink()
        faulted = run_grid(
            faulted_study,
            make_spec(faulted_study),
            policy=ExecutionPolicy(
                fault_plan=plan,
                max_retries=2,
                telemetry=Telemetry(sinks=[faulted_sink]),
            ),
        )
        assert faulted.complete
        for key in baseline.runs:
            assert baseline.runs[key] == faulted.runs[key]
        # Stripped of fault/checkpoint noise, the traces are identical.
        assert strip_variant_events(baseline_sink.events) == strip_variant_events(
            faulted_sink.events
        )
        assert faulted_sink.events != baseline_sink.events  # fault noise existed

    def test_genuine_exceptions_propagate(self):
        """Only injected faults are retried — real bugs must surface."""
        study = make_study()
        executor = ParallelExecutor(
            study, max_workers=1, policy=ExecutionPolicy(max_retries=5)
        )
        dataset = study.constructions.all_active
        with pytest.raises(ValueError):
            executor.run_cells([("6tree", dataset, Port.ICMP, -1)])

    def test_serial_failure_records_cells(self):
        study = make_study()
        plan = FaultPlan(rules=(FaultRule("exception", tga="6gen", max_fires=99),))
        results = run_grid(
            study,
            make_spec(study),
            policy=ExecutionPolicy(fault_plan=plan, max_retries=1),
        )
        assert [f.tga for f in results.failed_cells] == ["6gen"]
        failure = results.failed_cells[0]
        assert failure.attempts == 2  # initial try + one retry
        assert failure.reason == "exception"
        with pytest.raises(KeyError, match="6gen"):
            results.get("6gen", "all-active", Port.ICMP)


# ---------------------------------------------------------------------------
# The headline property: crash mid-grid, resume, bit-identical results
# ---------------------------------------------------------------------------


class TestCrashResumeProperty:
    def test_interrupted_resumed_grid_is_bit_identical(self, tmp_path):
        baseline_study = make_study()
        spec = make_spec(baseline_study, ports=(Port.ICMP, Port.TCP80))
        baseline = run_grid(baseline_study, spec)

        checkpoint = tmp_path / "cp.jsonl"

        # Session 1: a worker crash kills the 6gen cells permanently
        # (max_fires > max_retries) — the grid degrades to a partial
        # result, with everything completed persisted to the checkpoint.
        crashed_study = make_study()
        plan = FaultPlan(rules=(FaultRule("crash", tga="6gen", max_fires=99),))
        partial = run_grid(
            crashed_study,
            make_spec(crashed_study, ports=(Port.ICMP, Port.TCP80)),
            policy=ExecutionPolicy(
                workers=2,
                fault_plan=plan,
                max_retries=0,
                checkpoint=checkpoint,
            ),
        )
        assert not partial.complete
        assert {f.tga for f in partial.failed_cells} == {"6gen"}
        completed = set(partial.runs)
        assert completed  # the crash must not sink completed cells

        # Session 2: resume on a fresh study, no fault plan.  Completed
        # cells load from the checkpoint and are never re-executed.
        resumed_study = make_study()
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            resumed = run_grid(
                resumed_study,
                make_spec(resumed_study, ports=(Port.ICMP, Port.TCP80)),
                policy=ExecutionPolicy(
                    workers=2, checkpoint=checkpoint, resume=True
                ),
            )
        assert resumed.complete
        assert telemetry.counters["checkpoint.cells_loaded"] == len(completed)
        assert telemetry.counters["meta.parallel.cells_executed"] == (
            spec.size - len(completed)
        )

        # Bit-identical to the uninterrupted run, cell for cell.
        assert set(resumed.runs) == set(baseline.runs)
        for key in baseline.runs:
            assert baseline.runs[key] == resumed.runs[key]

        # The checkpoint now holds the complete grid and replays it.
        store = RunStore(checkpoint)
        store.load()
        store.verify(study_digest(make_study()))
        assert len(store.keys()) == spec.size

    def test_resume_refuses_a_different_world(self, tmp_path):
        checkpoint = tmp_path / "cp.jsonl"
        study = make_study()
        spec = make_spec(study)
        run_grid(study, spec, policy=ExecutionPolicy(checkpoint=checkpoint))

        other = Study(config=InternetConfig.tiny(master_seed=9), budget=500, round_size=200)
        with pytest.raises(ValueError, match="different"):
            run_grid(
                other,
                make_spec(other),
                policy=ExecutionPolicy(checkpoint=checkpoint, resume=True),
            )

    def test_fault_recovered_parallel_trace_matches_fault_free(self):
        spec_ports = (Port.ICMP, Port.TCP80)
        clean_study = make_study()
        clean_sink = MemorySink()
        run_grid(
            clean_study,
            make_spec(clean_study, ports=spec_ports),
            policy=ExecutionPolicy(
                workers=2, telemetry=Telemetry(sinks=[clean_sink])
            ),
        )
        crashed_study = make_study()
        crashed_sink = MemorySink()
        plan = FaultPlan(rules=(FaultRule("crash", tga="6gen", port="icmp"),))
        recovered = run_grid(
            crashed_study,
            make_spec(crashed_study, ports=spec_ports),
            policy=ExecutionPolicy(
                workers=2,
                fault_plan=plan,
                max_retries=2,
                telemetry=Telemetry(sinks=[crashed_sink]),
            ),
        )
        assert recovered.complete
        assert strip_variant_events(clean_sink.events) == strip_variant_events(
            crashed_sink.events
        )

    def test_timeout_reaps_stalled_cell(self):
        baseline_study = make_study()
        spec = make_spec(baseline_study)
        baseline = run_grid(baseline_study, spec)

        stalled_study = make_study()
        plan = FaultPlan(
            rules=(FaultRule("stall", tga="6gen"),), stall_seconds=120.0
        )
        results = run_grid(
            stalled_study,
            make_spec(stalled_study),
            policy=ExecutionPolicy(
                workers=2, fault_plan=plan, cell_timeout=8.0, max_retries=2
            ),
        )
        assert results.complete
        for key in baseline.runs:
            assert baseline.runs[key] == results.runs[key]


# ---------------------------------------------------------------------------
# GridResults.get: descriptive KeyErrors and alias resolution
# ---------------------------------------------------------------------------


class TestGridResultsGet:
    def test_alias_resolves_to_canonical_cell(self):
        study = make_study()
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("entropy_ip",),  # alias of "eip"
            ports=(Port.ICMP,),
            budget=BUDGET,
        )
        results = run_grid(study, spec)
        run = results.get("entropy_ip", "all-active", Port.ICMP)
        assert run.tga_name == "eip"
        assert results.get("eip", "all-active", Port.ICMP) is run
        assert results.by_tga("entropy_ip") == [run]

    def test_missing_cell_names_the_cell(self):
        study = make_study()
        results = run_grid(study, make_spec(study))
        with pytest.raises(KeyError, match=r"6tree.*no-such-dataset"):
            results.get("6tree", "no-such-dataset", Port.ICMP)

    def test_unknown_tga_names_cell_and_reason(self):
        study = make_study()
        results = run_grid(study, make_spec(study))
        with pytest.raises(KeyError, match="nonsense"):
            results.get("nonsense", "all-active", Port.ICMP)
