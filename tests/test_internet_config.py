"""Tests for repro.internet.config."""

import pytest

from repro.internet import InternetConfig


class TestPresets:
    def test_tiny_smaller_than_small(self):
        assert InternetConfig.tiny().num_ases < InternetConfig.small().num_ases

    def test_medium_larger_than_small(self):
        assert InternetConfig.medium().num_ases > InternetConfig.small().num_ases

    def test_with_seed(self):
        config = InternetConfig.tiny().with_seed(99)
        assert config.master_seed == 99
        assert config.num_ases == InternetConfig.tiny().num_ases


class TestValidation:
    def test_num_ases_minimum(self):
        with pytest.raises(ValueError):
            InternetConfig(num_ases=1)

    def test_alias_fraction_range(self):
        with pytest.raises(ValueError):
            InternetConfig(alias_region_fraction=1.5)

    def test_published_coverage_range(self):
        with pytest.raises(ValueError):
            InternetConfig(published_alias_coverage=-0.1)

    def test_sites_range(self):
        with pytest.raises(ValueError):
            InternetConfig(min_sites_per_as=3, max_sites_per_as=2)
        with pytest.raises(ValueError):
            InternetConfig(min_sites_per_as=0)


class TestOrgWeights:
    def test_normalised(self):
        weights = InternetConfig().org_weights
        assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_all_types_present(self):
        weights = InternetConfig().org_weights
        assert set(weights) == {
            "isp",
            "mobile",
            "cloud",
            "hosting",
            "cdn",
            "education",
            "government",
            "enterprise",
            "security",
        }

    def test_zero_total_rejected(self):
        config = InternetConfig(
            weight_isp=0,
            weight_mobile=0,
            weight_cloud=0,
            weight_hosting=0,
            weight_cdn=0,
            weight_education=0,
            weight_government=0,
            weight_enterprise=0,
            weight_security=0,
        )
        with pytest.raises(ValueError):
            _ = config.org_weights

    def test_frozen(self):
        config = InternetConfig()
        with pytest.raises(AttributeError):
            config.num_ases = 10
