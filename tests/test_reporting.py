"""Tests for repro.reporting."""

import json

import pytest

from repro.reporting import (
    format_count,
    format_ratio,
    render_bars,
    render_ratio_bars,
    render_series,
    render_table,
    rows_to_csv,
    rows_to_json,
    write_rows,
)


class TestFormatting:
    def test_format_count(self):
        assert format_count(1234567) == "1,234,567"
        assert format_count(3.9) == "3"

    def test_format_ratio(self):
        assert format_ratio(0.5) == "+0.50"
        assert format_ratio(-1.0) == "-1.00"
        assert format_ratio(float("inf")) == "+inf"
        assert format_ratio(float("-inf")) == "-inf"


class TestRenderTable:
    def test_basic_table(self):
        text = render_table(
            ["name", "hits"], [["6tree", "1,234"], ["eip", "5"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| name " in lines[2]
        assert any("6tree" in line for line in lines)

    def test_numeric_right_aligned(self):
        text = render_table(["a", "value"], [["x", "5"], ["y", "12345"]])
        rows = [line for line in text.splitlines() if "| x" in line or "| y" in line]
        assert rows[0].endswith("    5 |")

    def test_column_width_expands(self):
        text = render_table(["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in text


class TestRenderFigures:
    def test_render_bars(self):
        text = render_bars({"a": 10, "b": 5}, title="bars")
        assert text.startswith("bars")
        assert text.count("#") > 0

    def test_render_bars_empty(self):
        assert render_bars({}, title="t") == "t"

    def test_render_ratio_bars_signs(self):
        text = render_ratio_bars({"up": 1.0, "down": -1.0})
        lines = text.splitlines()
        assert "+1.00" in lines[0]
        assert "-1.00" in lines[1]

    def test_render_ratio_bars_infinity(self):
        text = render_ratio_bars({"x": float("inf")})
        assert "+inf" in text

    def test_render_series(self):
        text = render_series([("6sense", 100.0), ("det", 140.0)], title="cum")
        assert "6sense: 100" in text


class TestExport:
    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_rows_to_json(self):
        data = json.loads(rows_to_json([{"a": 1}]))
        assert data == [{"a": 1}]

    def test_write_rows_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_rows(str(path), [{"a": 1}])
        assert path.read_text().startswith("a")

    def test_write_rows_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_rows(str(path), [{"a": 1}])
        assert json.loads(path.read_text()) == [{"a": 1}]

    def test_write_rows_bad_extension(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(str(tmp_path / "out.txt"), [{"a": 1}])
