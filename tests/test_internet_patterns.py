"""Tests for repro.internet.patterns."""

import pytest

from repro.internet import COMMON_OUIS, IID_VOCABULARY, PatternKind, generate_iids


class TestGenerateIIDsGeneric:
    def test_empty_for_zero_count(self):
        for kind in PatternKind:
            assert generate_iids(kind, 0, 1) == frozenset()

    def test_deterministic(self):
        for kind in PatternKind:
            a = generate_iids(kind, 20, 1234)
            b = generate_iids(kind, 20, 1234)
            assert a == b

    def test_salt_changes_structured_sets(self):
        a = generate_iids(PatternKind.RANDOM, 20, 1)
        b = generate_iids(PatternKind.RANDOM, 20, 2)
        assert a != b

    def test_all_iids_64bit(self):
        for kind in PatternKind:
            for iid in generate_iids(kind, 30, 77):
                assert 0 <= iid < 2**64

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            generate_iids("bogus", 10, 1)  # type: ignore[arg-type]


class TestLowPattern:
    def test_sequential(self):
        iids = sorted(generate_iids(PatternKind.LOW, 10, 42))
        assert len(iids) == 10
        # Sequential run: max - min spans exactly the count.
        assert iids[-1] - iids[0] == 9

    def test_small_values(self):
        iids = generate_iids(PatternKind.LOW, 50, 9)
        assert max(iids) <= 0x100 + 50


class TestWordyPattern:
    def test_subset_of_vocabulary(self):
        iids = generate_iids(PatternKind.WORDY, 10, 5)
        assert iids <= set(IID_VOCABULARY)

    def test_count_bounded_by_vocabulary(self):
        iids = generate_iids(PatternKind.WORDY, 1000, 5)
        assert len(iids) <= len(IID_VOCABULARY)


class TestEUI64Pattern:
    def test_fffe_marker_present(self):
        for iid in generate_iids(PatternKind.EUI64, 20, 3):
            assert (iid >> 24) & 0xFFFF == 0xFFFE

    def test_oui_from_common_set(self):
        flipped_ouis = {oui ^ 0x020000 for oui in COMMON_OUIS}
        for iid in generate_iids(PatternKind.EUI64, 20, 3):
            assert (iid >> 40) in flipped_ouis

    def test_single_oui_per_region(self):
        iids = generate_iids(PatternKind.EUI64, 30, 3)
        assert len({iid >> 40 for iid in iids}) == 1

    def test_nic_parts_clustered(self):
        iids = sorted(generate_iids(PatternKind.EUI64, 30, 3))
        nics = [iid & 0xFFFFFF for iid in iids]
        assert max(nics) - min(nics) < 0x2000  # narrow provisioning band


class TestRandomPattern:
    def test_spread_over_64_bits(self):
        iids = generate_iids(PatternKind.RANDOM, 50, 7)
        # With 50 uniform draws, the top byte should take many values.
        top_bytes = {iid >> 56 for iid in iids}
        assert len(top_bytes) > 10

    def test_count_respected(self):
        assert len(generate_iids(PatternKind.RANDOM, 64, 11)) == 64
