"""Tests for repro.preprocess (pipeline and Table 2 constructions)."""

from repro.dealias import DealiasMode
from repro.internet import ALL_PORTS, Port
from repro.preprocess import DatasetConstructions, SeedPreprocessor


class TestSeedPreprocessor:
    def test_dealias_none_identity(self, internet, collection):
        pre = SeedPreprocessor(internet)
        full = collection.combined("full")
        assert pre.dealias(full, DealiasMode.NONE) is full

    def test_dealias_removes_aliases(self, internet, collection):
        pre = SeedPreprocessor(internet)
        full = collection.combined("full")
        joint = pre.dealias(full, DealiasMode.JOINT)
        assert len(joint) < len(full)
        assert joint.addresses < full.addresses

    def test_dealias_names(self, internet, collection):
        pre = SeedPreprocessor(internet)
        full = collection.combined("full")
        assert pre.dealias(full, DealiasMode.OFFLINE).name == "full:dealias-offline"

    def test_scan_activity_ports(self, internet, collection):
        pre = SeedPreprocessor(internet)
        activity = pre.scan_activity(collection["ripe_atlas"])
        assert set(activity) == set(ALL_PORTS)
        assert len(activity[Port.ICMP]) >= len(activity[Port.UDP53])

    def test_restrict_active_subset(self, internet, collection):
        pre = SeedPreprocessor(internet)
        dataset = collection["hitlist"]
        active = pre.restrict_active(dataset)
        assert active.addresses < dataset.addresses
        assert len(active) > 0

    def test_restrict_port_subset_of_active(self, internet, collection):
        pre = SeedPreprocessor(internet)
        dataset = collection["hitlist"]
        activity = pre.scan_activity(dataset)
        active = pre.restrict_active(dataset, activity)
        tcp = pre.restrict_port(dataset, Port.TCP80, activity)
        assert tcp.addresses <= active.addresses


class TestConstructions(object):
    def test_table2_ordering(self, study):
        """Sizes must shrink monotonically along the Table 2 refinements."""
        c = study.constructions
        assert len(c.full) > len(c.offline_dealiased) >= len(c.joint_dealiased)
        assert len(c.full) > len(c.online_dealiased) >= len(c.joint_dealiased)
        assert len(c.joint_dealiased) > len(c.all_active)
        for port in ALL_PORTS:
            assert len(c.port_specific(port)) <= len(c.all_active)

    def test_dealias_variant_dispatch(self, study):
        c = study.constructions
        assert c.dealias_variant(DealiasMode.NONE) is c.full
        assert c.dealias_variant(DealiasMode.OFFLINE) is c.offline_dealiased
        assert c.dealias_variant(DealiasMode.ONLINE) is c.online_dealiased
        assert c.dealias_variant(DealiasMode.JOINT) is c.joint_dealiased

    def test_all_active_actually_responds(self, study, internet):
        c = study.constructions
        from repro.scanner import Scanner

        scanner = Scanner(internet)
        sample = list(c.all_active.addresses)[:300]
        for address in sample:
            assert any(
                scanner.probe(address, port).is_hit for port in ALL_PORTS
            )

    def test_port_specific_responds_on_port(self, study, internet):
        from repro.scanner import Scanner

        scanner = Scanner(internet)
        tcp80 = study.constructions.port_specific(Port.TCP80)
        for address in list(tcp80.addresses)[:200]:
            assert scanner.probe(address, Port.TCP80).is_hit

    def test_icmp_dominates_activity(self, study):
        """Most responsive seeds answer ICMP (paper Table 3 shape)."""
        activity = study.constructions.activity
        icmp = len(activity[Port.ICMP])
        for port in (Port.TCP80, Port.TCP443, Port.UDP53):
            assert icmp > len(activity[port])

    def test_source_specific_subset(self, study):
        c = study.constructions
        censys_active = c.source_specific("censys")
        assert censys_active.addresses <= c.all_active.addresses
        assert censys_active.addresses <= c.collection["censys"].addresses
        assert censys_active.name == "source-censys"

    def test_sizes_summary(self, study):
        sizes = study.constructions.sizes()
        assert sizes["full"] >= sizes["joint_dealiased"] >= sizes["all_active"]
        assert "port_icmp" in sizes

    def test_constructions_cached(self, study):
        c = study.constructions
        assert c.all_active is c.all_active
        assert c.activity is c.activity
