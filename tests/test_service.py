"""End-to-end tests for the scan-observatory service (``repro serve``).

The asyncio server runs on a background thread with its own event loop;
tests drive it through :class:`repro.api.ServiceClient` (stdlib
``http.client``) from the pytest thread, exactly like an external
caller would.  No asyncio test framework is needed.
"""

import http.client
import json
import threading

import asyncio

import pytest

from repro.api import (
    QueueFullError,
    RateLimitedError,
    ServiceClient,
    ShuttingDownError,
    StudySpec,
    run_study,
)
from repro.errors import InvalidSpecError, NotFoundError
from repro.scanner.ratelimit import TokenBucket
from repro.service import (
    ObservatoryService,
    ServiceConfig,
    TenantPolicy,
    TenantRegistry,
)
from repro.service.queue import _DATASET_NAMES, EventLog

SMALL = dict(scale="tiny", budget=300, tgas=("6gen", "6tree"), ports=("icmp",))


def small_spec(**overrides):
    return StudySpec(**{**SMALL, **overrides})


class Harness:
    """Run an ObservatoryService on a daemon thread with its own loop."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        self.config = ServiceConfig(**config_kwargs)
        self.service = None
        self.loop = None
        self._thread = None
        self._started = threading.Event()

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.service = ObservatoryService(self.config)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()
        self.loop.close()

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(10), "service failed to start"
        return self

    def __exit__(self, *exc):
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)

    @property
    def base_url(self):
        return f"http://127.0.0.1:{self.service.port}"

    def client(self, tenant=None):
        return ServiceClient(self.base_url, tenant=tenant)


def normalize(rows):
    """JSON round-trip, so tuples compare equal to decoded lists."""
    return json.loads(json.dumps(rows, sort_keys=True))


def direct_rows(spec):
    """The lossless records a direct in-process run produces, in the
    service's grid order (ports outer, tgas inner)."""
    from repro.experiments.store import result_to_dict

    result = run_study(spec)
    return [
        result_to_dict(result.get(tga, port))
        for port in spec.ports
        for tga in spec.tgas
    ]


class TestEndToEnd:
    def test_submit_poll_stream_results(self):
        spec = small_spec()
        with Harness() as harness, harness.client() as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["api_version"] == "1"

            record = client.submit(spec)
            assert record["id"].startswith("st-")
            assert record["digest"] == spec.digest
            assert record["dedup"] == "none"
            assert record["spec"] == spec.to_dict()

            events = list(client.events(record["id"]))
            types = {event.get("type") for event in events}
            assert "study" in types
            assert "progress" in types
            progress = [e for e in events if e.get("type") == "progress"]
            assert progress[-1]["done"] == spec.size
            assert events[-1] == {
                "type": "study", "id": record["id"], "state": "done",
                "cells": spec.size,
            }

            done = client.wait(record["id"], timeout=60)
            assert done["state"] == "done"
            payload = client.results(record["id"])
            assert payload["study"]["state"] == "done"
            assert payload["results"] == normalize(direct_rows(spec))

            metrics = client.metrics()
            assert "service_submitted" in metrics
            assert "service_completed" in metrics

    def test_memory_dedup_shares_one_job(self):
        spec = small_spec()
        with Harness() as harness, harness.client() as client:
            first = client.submit(spec)
            client.wait(first["id"], timeout=60)
            second = client.submit(spec)
            assert second["id"] == first["id"]
            assert second["dedup"] == "memory"
            assert second["state"] == "done"
            assert len(client.list()) == 1
            assert "service_dedup_memory" in client.metrics()

    def test_checkpoint_dedup_survives_a_restart(self, tmp_path):
        spec = small_spec()
        state_dir = tmp_path / "state"
        with Harness(state_dir=state_dir) as harness:
            with harness.client() as client:
                record = client.submit(spec)
                client.wait(record["id"], timeout=60)
                executed = client.results(record["id"])["results"]
        digest_hex = spec.digest.split(":", 1)[1]
        assert (state_dir / f"{digest_hex}.jsonl").exists()
        # A fresh process (fresh Harness) knows nothing in memory; the
        # on-disk RunStore answers the resubmission without executing.
        with Harness(state_dir=state_dir) as harness:
            with harness.client() as client:
                record = client.submit(spec)
                assert record["dedup"] == "checkpoint"
                assert record["state"] == "done"
                restored = client.results(record["id"])["results"]
        assert restored == executed
        assert restored == normalize(direct_rows(spec))

    def test_graceful_shutdown_drains_workers(self):
        spec = small_spec(tgas=("6gen",))
        harness = Harness()
        with harness:
            with harness.client() as client:
                record = client.submit(spec)
        # __exit__ ran shutdown: the submitted study must have settled,
        # not been abandoned.
        job = harness.service.queue.get(record["id"])
        assert job.state == "done"
        assert job.events.closed
        assert not any(
            thread.name.startswith("repro-study") and thread.is_alive()
            for thread in threading.enumerate()
        )
        with pytest.raises(ShuttingDownError):
            harness.service.queue.submit(small_spec(budget=301), "anyone")


class TestRejections:
    def test_rate_limited_submissions_get_429(self):
        spec = small_spec(tgas=("6gen",))
        policy = TenantPolicy(rate=0.001, burst=1.0)
        with Harness(tenant_policy=policy) as harness:
            with harness.client(tenant="hammer") as client:
                client.submit(spec)  # consumes the only token
                with pytest.raises(RateLimitedError) as excinfo:
                    client.submit(spec)
        assert excinfo.value.http_status == 429
        assert excinfo.value.detail["retry_after"] > 0
        assert excinfo.value.detail["tenant"] == "hammer"

    def test_retry_after_header_is_served(self):
        spec = small_spec(tgas=("6gen",))
        policy = TenantPolicy(rate=0.001, burst=1.0)
        with Harness(tenant_policy=policy) as harness:
            with harness.client() as client:
                client.submit(spec)
            conn = http.client.HTTPConnection("127.0.0.1", harness.service.port)
            try:
                conn.request(
                    "POST", "/v1/studies", body=json.dumps(spec.to_dict()),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 429
                assert float(response.getheader("Retry-After")) > 0
                body = json.loads(response.read())
                assert body["error"]["code"] == "rate_limited"
            finally:
                conn.close()

    def test_malformed_json_body_gets_400(self):
        with Harness() as harness:
            conn = http.client.HTTPConnection("127.0.0.1", harness.service.port)
            try:
                conn.request(
                    "POST", "/v1/studies", body=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 400
                assert json.loads(response.read())["error"]["code"] == "bad_request"
            finally:
                conn.close()

    def test_invalid_spec_gets_400_with_field_detail(self):
        with Harness() as harness, harness.client() as client:
            with pytest.raises(InvalidSpecError) as excinfo:
                client.submit({"scale": "planetary"})
            assert excinfo.value.http_status == 400
            assert excinfo.value.detail["field"] == "scale"
            with pytest.raises(InvalidSpecError):
                client.submit({"bogus": 1})

    def test_empty_body_gets_400(self):
        with Harness() as harness:
            conn = http.client.HTTPConnection("127.0.0.1", harness.service.port)
            try:
                conn.request("POST", "/v1/studies")
                response = conn.getresponse()
                assert response.status == 400
                assert json.loads(response.read())["error"]["code"] == "invalid_spec"
            finally:
                conn.close()

    def test_unknown_study_and_route_get_404(self):
        with Harness() as harness, harness.client() as client:
            with pytest.raises(NotFoundError):
                client.get("st-0000000000000000")
            with pytest.raises(NotFoundError):
                client._json("GET", "/no/such/route")


class TestTenantRegistry:
    def test_active_cap_enforced_without_sleeping(self):
        registry = TenantRegistry(
            TenantPolicy(rate=1000.0, burst=1000.0, max_active=2)
        )
        registry.admit("team")
        registry.admit("team")
        with pytest.raises(QueueFullError) as excinfo:
            registry.admit("team")
        assert excinfo.value.detail["max_active"] == 2
        registry.release("team")
        registry.admit("team")  # a freed slot admits again

    def test_token_bucket_driven_by_injectable_clock(self):
        now = [0.0]
        registry = TenantRegistry(
            TenantPolicy(rate=1.0, burst=2.0, max_active=100),
            clock=lambda: now[0],
        )
        registry.admit("t")
        registry.admit("t")  # burst exhausted
        with pytest.raises(RateLimitedError) as excinfo:
            registry.admit("t")
        assert excinfo.value.detail["retry_after"] == pytest.approx(1.0)
        now[0] += 1.0  # one token refills at rate=1/s
        registry.admit("t")

    def test_tenants_are_isolated(self):
        registry = TenantRegistry(
            TenantPolicy(rate=0.001, burst=1.0), clock=lambda: 0.0
        )
        registry.admit("a")
        with pytest.raises(RateLimitedError):
            registry.admit("a")
        registry.admit("b")  # a's exhaustion never touches b
        snapshot = registry.snapshot()
        assert snapshot["a"]["rejected"] == 1
        assert snapshot["b"]["rejected"] == 0


class TestTokenBucket:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)

    def test_failed_acquire_consumes_nothing(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        # Repeated failures do not push the wait further out.
        assert bucket.try_acquire() == pytest.approx(1.0)
        now[0] += 0.5
        assert bucket.try_acquire() == pytest.approx(0.5)
        now[0] += 0.5
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: now[0])
        now[0] += 100.0
        assert bucket.available == pytest.approx(3.0)


class TestEventLog:
    def test_append_since_close(self):
        log = EventLog()
        log.append({"n": 1})
        log.append({"n": 2})
        assert len(log) == 2
        assert log.since(0) == [{"n": 1}, {"n": 2}]
        assert log.since(1) == [{"n": 2}]
        assert log.since(5) == []
        assert not log.closed
        log.close()
        assert log.closed


class TestDatasetNamePinning:
    def test_service_keys_match_real_construction_names(self):
        """_DATASET_NAMES mirrors DatasetConstructions; drift would make
        the checkpoint tier silently miss, so pin every mapping."""
        spec = small_spec()
        study = spec.build_study()
        for dataset in _DATASET_NAMES:
            named = StudySpec(**{**SMALL, "dataset": dataset})
            assert named.dataset_for(study).name == _DATASET_NAMES[dataset]
