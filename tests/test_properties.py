"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr import (
    MAX_ADDRESS,
    Prefix,
    PrefixTrie,
    common_prefix_len,
    format_address,
    from_nybbles,
    get_nybble,
    parse_address,
    set_nybble,
    to_nybbles,
)
from repro.dealias import AliasPrefixSet
from repro.metrics import cumulative_contributions, performance_ratio
from repro.tga import expanded_values

addresses = st.integers(min_value=0, max_value=MAX_ADDRESS)
prefix_lengths = st.integers(min_value=0, max_value=128)
nybble_indices = st.integers(min_value=0, max_value=31)
nybble_values = st.integers(min_value=0, max_value=15)


class TestAddressProperties:
    @given(addresses)
    def test_format_parse_roundtrip(self, value):
        assert parse_address(format_address(value)) == value

    @given(addresses)
    def test_nybble_roundtrip(self, value):
        assert from_nybbles(to_nybbles(value)) == value

    @given(addresses, nybble_indices, nybble_values)
    def test_set_then_get(self, value, index, nybble):
        assert get_nybble(set_nybble(value, index, nybble), index) == nybble

    @given(addresses, nybble_indices)
    def test_set_same_value_identity(self, value, index):
        assert set_nybble(value, index, get_nybble(value, index)) == value

    @given(addresses, addresses)
    def test_common_prefix_symmetry(self, a, b):
        assert common_prefix_len(a, b) == common_prefix_len(b, a)

    @given(addresses, addresses)
    def test_common_prefix_agrees_with_nybbles(self, a, b):
        length = common_prefix_len(a, b)
        assert to_nybbles(a)[:length] == to_nybbles(b)[:length]
        if length < 32:
            assert get_nybble(a, length) != get_nybble(b, length)


class TestPrefixProperties:
    @given(addresses, prefix_lengths)
    def test_of_contains_source(self, address, length):
        assert Prefix.of(address, length).contains(address)

    @given(addresses, prefix_lengths)
    def test_first_last_bracket(self, address, length):
        prefix = Prefix.of(address, length)
        assert prefix.first <= address <= prefix.last

    @given(addresses, st.integers(min_value=1, max_value=128))
    def test_children_partition(self, address, length):
        prefix = Prefix.of(address, length - 1)
        low, high = prefix.child(0), prefix.child(1)
        assert low.contains(address) != high.contains(address) or prefix.length >= 128

    @given(addresses, prefix_lengths, st.integers(min_value=0))
    def test_random_address_inside(self, address, length, draw):
        prefix = Prefix.of(address, length)
        assert prefix.contains(prefix.random_address(draw))


class TestTrieProperties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=8, max_value=128)),
            min_size=1,
            max_size=25,
        ),
        addresses,
    )
    @settings(max_examples=60)
    def test_trie_matches_linear_scan(self, entries, probe):
        trie = PrefixTrie()
        prefixes = []
        for value, length in entries:
            prefix = Prefix.of(value, length)
            trie.insert(prefix, str(prefix))
            prefixes.append(prefix)
        match = trie.longest_match(probe)
        containing = [p for p in prefixes if p.contains(probe)]
        if not containing:
            assert match is None
        else:
            best = max(p.length for p in containing)
            assert match is not None
            assert match[0].length == best

    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=8, max_value=120)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_alias_partition_is_a_partition(self, entries):
        aliases = AliasPrefixSet(Prefix.of(v, l) for v, l in entries)
        probes = [v ^ 0xABCDEF for v, _ in entries] + [v for v, _ in entries]
        clean, aliased = aliases.partition(probes)
        assert clean | aliased == set(probes)
        assert not clean & aliased
        for address in aliased:
            assert aliases.covers(address)
        for address in clean:
            assert not aliases.covers(address)


class TestMetricProperties:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    def test_ratio_sign_matches_direction(self, changed, original):
        ratio = performance_ratio(changed, original)
        if changed > original:
            assert ratio > 0
        elif changed < original:
            assert ratio < 0
        else:
            assert ratio == 0

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=6),
            st.sets(st.integers(min_value=0, max_value=200), max_size=30),
            min_size=1,
            max_size=6,
        )
    )
    def test_cumulative_contribution_invariants(self, named_sets):
        steps = cumulative_contributions(named_sets)
        union = set().union(*named_sets.values()) if named_sets else set()
        assert steps[-1].cumulative == len(union)
        assert sum(step.new_items for step in steps) == len(union)
        # Greedy property: first step takes the largest single set.
        assert steps[0].new_items == max(len(s) for s in named_sets.values())


class TestExpandedValuesProperties:
    @given(st.sets(nybble_values, min_size=1, max_size=16))
    def test_contains_observed_and_bounded(self, observed):
        values = expanded_values(set(observed))
        assert set(observed) <= set(values)
        assert all(0 <= value <= 15 for value in values)
        assert len(values) == len(set(values))

    @given(st.sets(nybble_values, min_size=1, max_size=16))
    def test_gap_free_between_min_and_max(self, observed):
        values = set(expanded_values(set(observed)))
        for value in range(min(observed), max(observed) + 1):
            assert value in values
