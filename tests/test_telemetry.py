"""Unit tests for repro.telemetry: registry, spans, sinks, activation."""

import io
import json

import pytest

from repro.telemetry import (
    DEFAULT_EDGES,
    ConsoleSink,
    Histogram,
    JsonlSink,
    MemorySink,
    Telemetry,
    get_telemetry,
    render_summary,
    use_telemetry,
)
from repro.telemetry.core import NULL_TELEMETRY


class TestHistogram:
    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5, 1))

    def test_bucket_boundaries_are_inclusive(self):
        hist = Histogram((10, 20))
        for value in (1, 10, 11, 20, 21):
            hist.observe(value)
        # bucket 0: <=10, bucket 1: <=20, bucket 2: overflow.
        assert hist.buckets == [2, 2, 1]
        assert hist.count == 5
        assert hist.total == 63

    def test_snapshot_roundtrips_through_merge(self):
        a = Histogram((1, 5))
        for value in (1, 3, 99):
            a.observe(value)
        b = Histogram((1, 5))
        b.merge(a.snapshot())
        assert b.snapshot() == a.snapshot()

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ValueError):
            Histogram((1, 2)).merge(Histogram((1, 3)))


class TestRegistry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("a")
        tel.count("a", 4)
        tel.count("b", 2)
        assert tel.counters == {"a": 5, "b": 2}

    def test_gauges_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("workers", 2)
        tel.gauge("workers", 8)
        assert tel.gauges == {"workers": 8.0}

    def test_observe_uses_default_edges(self):
        tel = Telemetry()
        tel.observe("batch", 7)
        assert tel.histograms["batch"].edges == DEFAULT_EDGES

    def test_snapshot_is_sorted_and_wall_free(self):
        tel = Telemetry()
        tel.count("z")
        tel.count("a")
        snap = tel.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert "wall" not in snap["spans"]

    def test_snapshot_include_wall(self):
        tel = Telemetry()
        with tel.span("phase"):
            pass
        snap = tel.snapshot(include_wall=True)
        (child,) = snap["spans"]["children"]
        assert child["wall"] >= 0.0


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        outer = tel.root.children["outer"]
        assert outer.count == 1
        assert outer.children["inner"].count == 2
        assert outer.children["inner"].path == "outer/inner"

    def test_virtual_time_attaches_to_the_span(self):
        tel = Telemetry()
        with tel.span("scan") as handle:
            handle.add_virtual(1.5)
            handle.add_virtual(0.5)
        assert tel.root.children["scan"].virtual == 2.0

    def test_span_event_emitted_only_with_sinks(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        with tel.span("phase", port="icmp") as handle:
            handle.add_virtual(2.0)
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["path"] == "phase"
        assert event["virtual"] == 2.0
        assert event["port"] == "icmp"
        assert event["seq"] == 1

    def test_span_survives_exceptions(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("phase"):
                raise RuntimeError("boom")
        assert tel.root.children["phase"].count == 1
        # The stack unwound: new spans nest at the root again.
        with tel.span("other"):
            pass
        assert "other" in tel.root.children


class TestMergeSnapshot:
    def test_counters_add_and_gauges_overwrite(self):
        a, b = Telemetry(), Telemetry()
        a.count("x", 1)
        a.gauge("g", 1)
        b.count("x", 2)
        b.count("y", 3)
        b.gauge("g", 9)
        a.merge_snapshot(b.snapshot())
        assert a.counters == {"x": 3, "y": 3}
        assert a.gauges == {"g": 9.0}

    def test_histograms_merge(self):
        a, b = Telemetry(), Telemetry()
        a.observe("h", 1)
        b.observe("h", 100)
        a.merge_snapshot(b.snapshot())
        assert a.histograms["h"].count == 2

    def test_spans_graft_onto_the_open_span(self):
        worker = Telemetry()
        with worker.span("cell"):
            pass
        parent = Telemetry()
        with parent.span("grid"):
            parent.merge_snapshot(worker.snapshot())
        grid = parent.root.children["grid"]
        assert grid.children["cell"].count == 1

    def test_merge_is_associative_on_counters(self):
        parts = []
        for value in (1, 2, 3):
            tel = Telemetry()
            tel.count("n", value)
            parts.append(tel.snapshot())
        combined = Telemetry()
        for part in parts:
            combined.merge_snapshot(part)
        assert combined.counters["n"] == 6


class TestSinks:
    def test_jsonl_sink_writes_sorted_compact_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        tel.emit("round", zebra=1, apple=2)
        tel.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert lines[0] == '{"apple":2,"seq":1,"type":"round","zebra":1}'
        snapshot = json.loads(lines[1])
        assert snapshot["type"] == "snapshot"

    def test_jsonl_sink_without_final_snapshot(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path, final_snapshot=False)])
        tel.emit("ping")
        tel.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

    def test_jsonl_sink_rejects_writes_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close(Telemetry())
        with pytest.raises(ValueError):
            sink.handle({"type": "late"})

    def test_jsonl_sink_opens_lazily(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing recorded yet: no file
        sink.handle({"type": "ping"})
        assert path.exists()
        sink.close(Telemetry())

    def test_jsonl_sink_aborted_close_writes_footer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        tel.emit("round", n=1)
        tel.close(aborted=True)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[-1]) == {"type": "aborted"}
        # No snapshot: the trace is visibly truncated, not complete.
        assert all(json.loads(line)["type"] != "snapshot" for line in lines)

    def test_jsonl_sink_event_free_run_still_leaves_a_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        tel.count("c", 1)  # counters don't emit events
        tel.close()
        (line,) = path.read_text(encoding="utf-8").splitlines()
        snapshot = json.loads(line)
        assert snapshot["type"] == "snapshot"
        assert snapshot["counters"] == {"c": 1}

    def test_jsonl_sink_gzip_roundtrip_is_deterministic(self, tmp_path):
        def record(path):
            tel = Telemetry(sinks=[JsonlSink(path)])
            tel.emit("round", n=1)
            tel.count("c", 2)
            tel.close()

        import gzip

        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        record(a)
        record(b)
        assert a.read_bytes() == b.read_bytes()  # mtime zeroed
        plain = tmp_path / "plain.jsonl"
        record(plain)
        assert gzip.decompress(a.read_bytes()).decode("utf-8") == plain.read_text(
            encoding="utf-8"
        )

    def test_memory_sink_buffers_and_snapshots(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.count("c", 7)
        tel.emit("ping")
        tel.close()
        assert [event["type"] for event in sink.events] == ["ping"]
        assert sink.snapshot["counters"] == {"c": 7}

    def test_console_sink_prints_summary(self):
        stream = io.StringIO()
        tel = Telemetry(sinks=[ConsoleSink(stream=stream)])
        tel.count("scan.probes", 100)
        with tel.span("grid"):
            pass
        tel.close()
        output = stream.getvalue()
        assert "scan.probes" in output
        assert "grid" in output

    def test_render_summary_covers_all_sections(self):
        tel = Telemetry()
        tel.count("c", 1)
        tel.gauge("g", 2.5)
        tel.observe("h", 3)
        with tel.span("s"):
            pass
        text = render_summary(tel)
        for fragment in ("counters", "gauges", "histograms", "spans", "c", "s"):
            assert fragment in text

    def test_render_summary_histogram_percentiles(self):
        tel = Telemetry()
        for value in (1, 3, 8, 40, 90):
            tel.observe("h", value, edges=(10, 100))
        text = render_summary(tel)
        line = next(l for l in text.splitlines() if l.strip().startswith("h:"))
        for column in ("n=5", "mean=28.4", "p50=", "p90=", "max=~100"):
            assert column in line

    def test_render_summary_overflowed_histogram_max(self):
        tel = Telemetry()
        tel.observe("h", 500, edges=(10, 100))
        text = render_summary(tel)
        assert "max=>100" in text


class TestHistogramQuantiles:
    def test_quantile_method_matches_function(self):
        from repro.telemetry import quantile_from_buckets

        hist = Histogram((10, 20))
        for value in (1, 5, 12, 18, 19):
            hist.observe(value)
        assert hist.quantile(0.5) == quantile_from_buckets(
            hist.edges, hist.buckets, 0.5
        )

    def test_estimated_max(self):
        hist = Histogram((10, 20))
        assert hist.estimated_max() == (0.0, False)
        hist.observe(5)
        assert hist.estimated_max() == (10.0, False)
        hist.observe(15)
        assert hist.estimated_max() == (20.0, False)
        hist.observe(999)
        assert hist.estimated_max() == (20.0, True)


class TestActivation:
    def test_default_is_the_shared_null_registry(self):
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled
        # Everything is a no-op, including spans.
        with tel.span("phase") as handle:
            handle.add_virtual(1.0)
        tel.count("x")
        tel.emit("e")

    def test_use_telemetry_activates_and_restores(self):
        tel = Telemetry()
        with use_telemetry(tel) as active:
            assert active is tel
            assert get_telemetry() is tel
        assert get_telemetry() is NULL_TELEMETRY

    def test_use_telemetry_none_is_passthrough(self):
        outer = Telemetry()
        with use_telemetry(outer):
            with use_telemetry(None) as active:
                assert active is outer
                assert get_telemetry() is outer
            assert get_telemetry() is outer

    def test_nested_activation_restores_the_outer_registry(self):
        outer, inner = Telemetry(), Telemetry()
        with use_telemetry(outer):
            with use_telemetry(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is outer
