"""The golden telemetry workload shared by the regression test and the
regeneration script.

One tiny fixed-seed serial grid (2 TGAs x 1 port on a micro world) run
with an attached :class:`~repro.telemetry.MemorySink`.  Everything the
run records — counters, histograms, the span tree and the full event
stream — is deterministic, so the whole payload is checked into
``tests/data/telemetry_golden.json`` and compared with exact equality.

Regenerate after an intentional telemetry change with:

    PYTHONPATH=src python -m tests.regen_telemetry_golden
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import ExecutionPolicy, GridSpec, Study, run_grid
from repro.internet import InternetConfig, Port
from repro.telemetry import MemorySink, Telemetry
from repro.tga import ModelCache, use_model_cache

GOLDEN_PATH = Path(__file__).parent / "data" / "telemetry_golden.json"

GOLDEN_SEED = 1337
GOLDEN_TGAS = ("6tree", "6gen")
GOLDEN_BUDGET = 150


def golden_config() -> InternetConfig:
    """The micro world the golden trace is recorded against."""
    return InternetConfig(
        master_seed=GOLDEN_SEED,
        num_ases=12,
        max_sites_per_as=2,
        server_density_min=8,
        server_density_max=24,
        cdn_density_min=12,
        cdn_density_max=30,
        enterprise_density_min=4,
        enterprise_density_max=12,
        subscriber_density_min=2,
        subscriber_density_max=8,
        mega_isp_regions=20,
    )


def compute_golden_payload() -> dict:
    """Run the golden workload; return the deterministic telemetry dump."""
    study = Study(
        config=golden_config(),
        budget=GOLDEN_BUDGET,
        round_size=GOLDEN_BUDGET // 2,
    )
    spec = GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=GOLDEN_TGAS,
        ports=(Port.ICMP,),
        budget=GOLDEN_BUDGET,
    )
    sink = MemorySink()
    telemetry = Telemetry(sinks=[sink])
    # A fresh model cache isolates the golden trace from whatever the
    # process-wide cache has accumulated earlier in a test session: the
    # (sanctioned-variant) ``tga.model_cache.*`` counters and the
    # ``prepare`` span's ``cached`` attribute are part of the payload,
    # so the workload must always start cold.
    with use_model_cache(ModelCache()):
        run_grid(study, spec, policy=ExecutionPolicy(telemetry=telemetry))
    telemetry.close()
    return {"events": sink.events, "snapshot": sink.snapshot}


def load_golden_payload() -> dict:
    """The checked-in fixture, parsed."""
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def write_golden_payload() -> dict:
    """Recompute the payload and overwrite the fixture; returns it."""
    payload = compute_golden_payload()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload
