"""Tests for repro.tga.leafpool."""

import pytest

from repro.addr import parse_address
from repro.tga import LeafPool, SpaceTreeLeaf


def A(text: str) -> int:
    return parse_address(text)


def make_leaf(prefix: str, count: int = 4, index: int = 0) -> SpaceTreeLeaf:
    seeds = [A(f"{prefix}::{i}") for i in range(1, count + 1)]
    leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=[31], index=index)
    return leaf


class TestDraw:
    def test_draw_count(self):
        # A 4-seed single-dim leaf can yield exactly 3 fresh candidates
        # (hi+1, hi+2, lo-1); draw() must deliver all of them and stop.
        pool = LeafPool([make_leaf("2001:db8")])
        drawn = pool.draw(5)
        assert len(drawn) == 3

    def test_draw_count_two_dims(self):
        seeds = [A(f"2001:db8:{s}::{i}") for s in (1, 2) for i in range(1, 5)]
        from repro.addr.nybbles import differing_positions

        leaf = SpaceTreeLeaf(seeds=seeds, variable_dims=differing_positions(seeds))
        pool = LeafPool([leaf])
        assert len(pool.draw(10)) == 10

    def test_draw_returns_leaf_indices(self):
        pool = LeafPool([make_leaf("2001:db8"), make_leaf("2400:1", index=1)])
        drawn = pool.draw(6)
        indices = {index for _, index in drawn}
        assert indices <= {0, 1}

    def test_no_duplicates_across_draws(self):
        pool = LeafPool([make_leaf("2001:db8")])
        first = {address for address, _ in pool.draw(5)}
        second = {address for address, _ in pool.draw(5)}
        assert not first & second

    def test_exclude_respected(self):
        excluded = A("2001:db8::5")
        pool = LeafPool([make_leaf("2001:db8")], exclude={excluded})
        drawn = {address for address, _ in pool.draw(30)}
        assert excluded not in drawn

    def test_zero_count(self):
        pool = LeafPool([make_leaf("2001:db8")])
        assert pool.draw(0) == []

    def test_exhaustion(self):
        # A single variable dim yields at most 16 + extrapolation values.
        pool = LeafPool([make_leaf("2001:db8", count=2)], max_level=1)
        drawn = pool.draw(1000)
        assert 0 < len(drawn) < 1000
        assert not pool.alive
        assert pool.draw(10) == []

    def test_weight_zero_leaf_deprioritised(self):
        busy = make_leaf("2001:db8", count=8)
        idle = make_leaf("2400:1", count=8, index=1)
        pool = LeafPool([busy, idle], weights=[1.0, 0.0])
        drawn = pool.draw(3)  # within the busy leaf's fresh capacity
        assert all(index == 0 for _, index in drawn)

    def test_zero_weight_fallback_when_only_option(self):
        pool = LeafPool([make_leaf("2001:db8")], weights=[0.0])
        assert len(pool.draw(3)) == 3

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            LeafPool([make_leaf("2001:db8")], weights=[1.0, 2.0])

    def test_high_weight_gets_more(self):
        heavy = make_leaf("2001:db8", count=10)
        light = make_leaf("2400:1", count=10, index=1)
        pool = LeafPool([heavy, light], weights=[10.0, 1.0])
        drawn = pool.draw(20)
        heavy_share = sum(1 for _, index in drawn if index == 0)
        assert heavy_share > 10


class TestFeedback:
    def test_record_and_hitrate(self):
        pool = LeafPool([make_leaf("2001:db8")])
        assert pool.hitrate(0) == 0.0
        pool.record(0, True)
        pool.record(0, False)
        assert pool.hitrate(0) == 0.5
        assert pool.probes[0] == 2
        assert pool.hits[0] == 1

    def test_set_weight_clamps_negative(self):
        pool = LeafPool([make_leaf("2001:db8")])
        pool.set_weight(0, -5.0)
        assert pool.weights[0] == 0.0

    def test_len(self):
        pool = LeafPool([make_leaf("2001:db8"), make_leaf("2400:1", index=1)])
        assert len(pool) == 2
