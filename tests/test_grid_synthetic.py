"""Tests for experiment grids and synthetic seed factories."""

import pytest

from repro.addr import parse_address
from repro.datasets import (
    SeedDataset,
    SourceKind,
    eui64_cluster,
    low_iid_run,
    random_block,
    synthetic_dataset,
    wordy_block,
)
from repro.experiments import GridSpec, run_grid
from repro.internet import Port


class TestSyntheticFactories:
    def test_low_iid_run(self):
        seeds = low_iid_run("2001:db8:0:1::", 5)
        assert seeds == [parse_address(f"2001:db8:0:1::{i}") for i in range(1, 6)]

    def test_low_iid_custom_start(self):
        seeds = low_iid_run("2001:db8::", 3, start=0x10)
        assert seeds[0] == parse_address("2001:db8::10")

    def test_wordy_block_in_prefix(self):
        seeds = wordy_block("2001:db8:0:2::", count=8)
        assert len(seeds) == 8
        for seed in seeds:
            assert seed >> 64 == parse_address("2001:db8:0:2::") >> 64

    def test_eui64_cluster_structure(self):
        seeds = eui64_cluster("2400:cb00:1::", 10)
        ouis = {(seed >> 40) & 0xFFFFFF for seed in seeds}
        assert len(ouis) == 1
        for seed in seeds:
            assert (seed >> 24) & 0xFFFF == 0xFFFE

    def test_random_block_spread(self):
        seeds = random_block("2600:9000::", 40)
        assert len({seed & 0xFFFF_FFFF_FFFF_FFFF for seed in seeds}) == 40

    def test_factories_deterministic(self):
        assert eui64_cluster("2400::", 5, salt=1) == eui64_cluster("2400::", 5, salt=1)
        assert random_block("2400::", 5, salt=2) == random_block("2400::", 5, salt=2)

    def test_synthetic_dataset_bundle(self):
        dataset = synthetic_dataset(
            "lab",
            low_iid_run("2001:db8:0:1::", 10),
            wordy_block("2001:db8:0:2::", 5),
        )
        assert dataset.name == "lab"
        assert dataset.kind is SourceKind.HITLIST
        assert len(dataset) == 15

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            synthetic_dataset("empty")

    def test_tga_learns_synthetic_structure(self):
        from repro.tga import create_tga

        dataset = synthetic_dataset("lab", low_iid_run("2001:db8:0:1::", 20))
        tga = create_tga("6tree")
        tga.prepare(sorted(dataset.addresses))
        proposals = set(tga.propose(40))
        assert parse_address("2001:db8:0:1::15") in proposals  # 21 decimal


class TestGridSpec:
    def make_datasets(self):
        return (
            synthetic_dataset("a", low_iid_run("2001:db8:0:1::", 10)),
            synthetic_dataset("b", wordy_block("2400:cb00:1::", 8)),
        )

    def test_size(self):
        spec = GridSpec(
            datasets=self.make_datasets(),
            tga_names=("6tree", "6gen"),
            ports=(Port.ICMP,),
        )
        assert spec.size == 4

    def test_cells_stable_order(self):
        spec = GridSpec(
            datasets=self.make_datasets(),
            tga_names=("6tree",),
            ports=(Port.ICMP, Port.TCP80),
        )
        cells = list(spec.cells())
        assert cells == list(spec.cells())
        assert len(cells) == spec.size

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(datasets=())
        with pytest.raises(ValueError):
            GridSpec(datasets=self.make_datasets(), tga_names=())
        with pytest.raises(ValueError):
            GridSpec(datasets=self.make_datasets(), ports=())

    def test_duplicate_dataset_names_rejected(self):
        dataset = synthetic_dataset("dup", low_iid_run("2001:db8::", 5))
        with pytest.raises(ValueError):
            GridSpec(datasets=(dataset, dataset))


class TestRunGrid:
    def test_runs_all_cells(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6tree", "6gen"),
            ports=(Port.ICMP,),
            budget=300,
        )
        results = run_grid(study, spec)
        assert len(results.runs) == 2
        assert results.get("6tree", "all-active", Port.ICMP).budget == 300

    def test_progress_callback(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6gen",),
            ports=(Port.ICMP, Port.UDP53),
            budget=300,
        )
        seen = []
        run_grid(study, spec, progress=lambda done, total, run: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_axis_accessors(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6tree", "6gen"),
            ports=(Port.ICMP, Port.UDP53),
            budget=300,
        )
        results = run_grid(study, spec)
        assert len(results.by_tga("6tree")) == 2
        assert len(results.by_port(Port.ICMP)) == 2
        assert len(results.by_dataset("all-active")) == 4

    def test_best(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6tree", "eip"),
            ports=(Port.ICMP,),
            budget=300,
        )
        results = run_grid(study, spec)
        assert results.best("hits").tga_name == "6tree"

    def test_best_rejects_unknown_metric(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6tree",),
            ports=(Port.ICMP,),
            budget=300,
        )
        results = run_grid(study, spec)
        with pytest.raises(ValueError, match="hits, ases, aliases"):
            results.best("latency")

    def test_to_rows(self, study):
        spec = GridSpec(
            datasets=(study.constructions.all_active,),
            tga_names=("6gen",),
            ports=(Port.ICMP,),
            budget=300,
        )
        rows = run_grid(study, spec).to_rows()
        assert len(rows) == 1
        assert rows[0]["tga"] == "6gen"
