"""Tests for the CPE-gateway population (the RQ2 ICMP-only trap)."""

from repro.asdb import OrgType
from repro.internet import PatternKind, Port, RegionRole


class TestGatewayRegions:
    def test_gateways_exist(self, internet):
        gateways = internet.regions_with_role(RegionRole.GATEWAY)
        assert gateways

    def test_only_in_eyeball_ases(self, internet):
        for region in internet.regions_with_role(RegionRole.GATEWAY):
            org = internet.registry.info(region.asn).org_type
            assert org in (OrgType.ISP, OrgType.MOBILE)

    def test_low_pattern_low_density(self, internet):
        for region in internet.regions_with_role(RegionRole.GATEWAY)[:50]:
            assert region.pattern is PatternKind.LOW
            assert region.density <= 3

    def test_icmp_only_profile(self, internet):
        for region in internet.regions_with_role(RegionRole.GATEWAY)[:50]:
            assert region.profile.icmp > 0.5
            assert region.profile.tcp80 < 0.05
            assert region.profile.tcp443 < 0.05

    def test_icmp_responsive_but_not_tcp(self, internet):
        """The population answers ping in volume but almost nothing on
        web ports — the dilution that makes port-specific seeds pay off."""
        icmp = 0
        tcp = 0
        for region in internet.regions_with_role(RegionRole.GATEWAY):
            icmp += len(region.responsive_iids(Port.ICMP, 1))
            tcp += len(region.responsive_iids(Port.TCP443, 1))
        assert icmp > 20 * max(1, tcp)

    def test_collected_by_traceroute_sources(self, internet, collection):
        gateway_nets = {
            r.net64 for r in internet.regions_with_role(RegionRole.GATEWAY)
        }
        ripe_gateway = sum(
            1 for a in collection["ripe_atlas"].addresses if (a >> 64) in gateway_nets
        )
        assert ripe_gateway > 0

    def test_not_collected_by_domain_toplists(self, internet, collection):
        gateway_nets = {
            r.net64 for r in internet.regions_with_role(RegionRole.GATEWAY)
        }
        umbrella_gateway = sum(
            1 for a in collection["umbrella"].addresses if (a >> 64) in gateway_nets
        )
        assert umbrella_gateway == 0


class TestMegaPattern:
    def test_mega_is_large_icmp_only_population(self, internet):
        mega = [r for r in internet.regions if r.asn == internet.mega_isp_asn]
        assert len(mega) == internet.config.mega_isp_regions
        icmp_active = sum(len(r.responsive_iids(Port.ICMP, 1)) for r in mega)
        tcp_active = sum(len(r.responsive_iids(Port.TCP80, 1)) for r in mega)
        # Roughly the configured response probability of the pattern…
        assert icmp_active > len(mega) * internet.config.mega_isp_icmp_response * 0.4
        # …and essentially nothing on TCP.
        assert tcp_active <= icmp_active / 10
