"""Tests for repro.addr.prefix."""

import pytest

from repro.addr import Prefix, parse_address


class TestConstruction:
    def test_parse(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.value == 0x20010DB8 << 96
        assert prefix.length == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix.parse("2001:db8::1/32")

    def test_of_masks_host_bits(self):
        address = parse_address("2001:db8::dead")
        prefix = Prefix.of(address, 64)
        assert prefix == Prefix.parse("2001:db8::/64")

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 129)
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(1, 64)

    def test_full_length_allowed(self):
        prefix = Prefix(parse_address("2001:db8::1"), 128)
        assert prefix.num_addresses == 1


class TestContainment:
    def test_contains_member(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.contains(parse_address("2001:db8:ffff::1"))

    def test_excludes_outside(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert not prefix.contains(parse_address("2001:db9::1"))

    def test_zero_length_contains_everything(self):
        prefix = Prefix(0, 0)
        assert prefix.contains(0)
        assert prefix.contains(2**128 - 1)

    def test_contains_prefix_nested(self):
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:1::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_contains_prefix_self(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.contains_prefix(prefix)


class TestGeometry:
    def test_num_addresses(self):
        assert Prefix.parse("2001:db8::/96").num_addresses == 2**32

    def test_first_last(self):
        prefix = Prefix.parse("2001:db8::/64")
        assert prefix.first == prefix.value
        assert prefix.last == prefix.value + 2**64 - 1

    def test_child_low_high(self):
        prefix = Prefix.parse("2001:db8::/32")
        low, high = prefix.child(0), prefix.child(1)
        assert low.length == high.length == 33
        assert low.value == prefix.value
        assert high.value == prefix.value | (1 << 95)

    def test_child_of_full_length_raises(self):
        with pytest.raises(ValueError):
            Prefix(0, 128).child(0)

    def test_child_bad_bit(self):
        with pytest.raises(ValueError):
            Prefix(0, 0).child(2)

    def test_supernet(self):
        prefix = Prefix.parse("2001:db8:1:2::/64")
        assert prefix.supernet(32) == Prefix.parse("2001:db8::/32")

    def test_supernet_longer_raises(self):
        with pytest.raises(ValueError):
            Prefix.parse("2001:db8::/32").supernet(48)

    def test_random_address_inside(self):
        prefix = Prefix.parse("2001:db8::/64")
        for draw in (0, 1, 2**64 - 1, 123456789):
            assert prefix.contains(prefix.random_address(draw))


class TestDunder:
    def test_str(self):
        assert str(Prefix.parse("2001:db8::/32")) == "2001:db8::/32"

    def test_repr_roundtrip_info(self):
        assert "2001:db8::/32" in repr(Prefix.parse("2001:db8::/32"))

    def test_ordering(self):
        a = Prefix.parse("2001:db8::/32")
        b = Prefix.parse("2001:db9::/32")
        assert a < b

    def test_hashable(self):
        assert len({Prefix.parse("::/0"), Prefix.parse("::/0")}) == 1
