"""Failure-injection tests: the run loop must stay robust when a
generator misbehaves (stalls, repeats itself, or regurgitates seeds)."""

from repro.experiments import run_generation
from repro.internet import Port
from repro.tga.base import TargetGenerator


class _Staller(TargetGenerator):
    """Produces one batch, then nothing, forever."""

    name = "6tree"  # piggyback an existing label; instances via factory
    online = False

    def __init__(self, salt: int = 0) -> None:
        super().__init__(salt=salt)
        self._served = False

    def _ingest(self, seeds):
        self._base = max(seeds) + 1

    def propose(self, count):
        if self._served:
            return []
        self._served = True
        return [self._base + i for i in range(min(count, 50))]


class _Repeater(TargetGenerator):
    """Returns the same batch every round (a duplicate-spammer)."""

    name = "6tree"
    online = False

    def _ingest(self, seeds):
        self._base = max(seeds) + 1

    def propose(self, count):
        return [self._base + i for i in range(min(count, 50))]


class _SeedEcho(TargetGenerator):
    """Proposes only seed addresses (zero fresh output)."""

    name = "6tree"
    online = False

    def _ingest(self, seeds):
        self._seeds = list(seeds)

    def propose(self, count):
        return self._seeds[:count]


class TestRunLoopRobustness:
    def test_staller_terminates(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=10_000,
            round_size=500,
            tga_factory=lambda salt: _Staller(salt),
        )
        assert result.generated == 50  # got the one batch, then stopped

    def test_repeater_terminates(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=10_000,
            round_size=500,
            tga_factory=lambda salt: _Repeater(salt),
        )
        # First round yields 50 fresh; later rounds are all duplicates and
        # the stall counter breaks the loop.
        assert result.generated == 50

    def test_seed_echo_terminates_with_zero(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=5_000,
            round_size=500,
            tga_factory=lambda salt: _SeedEcho(salt),
        )
        assert result.generated == 0
        assert result.metrics.hits == 0

    def test_observe_with_unknown_addresses_is_safe(self, study):
        """Online generators ignore feedback for addresses they never
        proposed (e.g. when a caller merges scan results)."""
        from repro.tga import create_tga

        for name in ("det", "6scan", "6hit", "6sense"):
            tga = create_tga(name)
            tga.prepare([1 << 120, (1 << 120) + 1])
            tga.observe({0xDEAD: True, 0xBEEF: False})  # must not raise
