"""Tests for repro.experiments.parallel: the multiprocess grid executor.

The correctness gate of the parallel path is *bit-identical* results:
every stochastic decision in the system is splitmix64-hashed from the
master seed, so a cell must compute the same RunResult in any process.
"""

import pytest

from repro.experiments import (
    ExecutionPolicy,
    FaultPlan,
    FaultRule,
    GridSpec,
    ParallelExecutor,
    Study,
    WorkerSpec,
    run_grid,
)
from repro.internet import InternetConfig, Port
from repro.telemetry import Telemetry

TGAS = ("6tree", "6gen", "eip")
PORTS = (Port.ICMP, Port.TCP80)
BUDGET = 400


def make_study() -> Study:
    return Study(config=InternetConfig.tiny(), budget=500, round_size=200)


def make_spec(study: Study) -> GridSpec:
    return GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=TGAS,
        ports=PORTS,
        budget=BUDGET,
    )


def assert_identical_runs(a, b) -> None:
    """Full bit-identity: hit sets, AS sets, metrics, round trajectory."""
    assert a.clean_hits == b.clean_hits
    assert a.aliased_hits == b.aliased_hits
    assert a.active_ases == b.active_ases
    assert a.metrics == b.metrics
    assert a.generated == b.generated
    assert a.probes_sent == b.probes_sent
    assert a.rounds == b.rounds
    assert a.round_history == b.round_history


class TestWorkerSpec:
    def test_roundtrip_builds_equivalent_study(self):
        study = make_study()
        spec = WorkerSpec.from_study(study)
        rebuilt = spec.build_study()
        assert rebuilt.internet.config == study.internet.config
        assert rebuilt.budget == study.budget
        assert rebuilt.round_size == study.round_size
        assert rebuilt.tga_names == tuple(study.tga_names)
        assert rebuilt.packets_per_second == study.packets_per_second

    def test_spec_is_hashable_fingerprint(self):
        study = make_study()
        a = WorkerSpec.from_study(study)
        b = WorkerSpec.from_study(study)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_blocklist_survives_roundtrip(self):
        from repro.addr import Prefix
        from repro.scanner import Blocklist

        prefix = Prefix.parse("2001:db8::/32")
        study = Study(
            config=InternetConfig.tiny(),
            budget=300,
            round_size=100,
            blocklist=Blocklist([prefix]),
        )
        rebuilt = WorkerSpec.from_study(study).build_study()
        assert rebuilt.blocklist.prefixes() == [prefix]

    def test_executor_validates_arguments(self):
        study = make_study()
        with pytest.raises(ValueError):
            ParallelExecutor(study, max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(study, chunksize=0)


class TestParallelDeterminism:
    """The tentpole's correctness gate: serial ≡ parallel, bit for bit."""

    def test_run_grid_parallel_matches_serial(self):
        serial_study = make_study()
        parallel_study = make_study()
        serial = run_grid(serial_study, make_spec(serial_study))
        parallel = run_grid(
            parallel_study, make_spec(parallel_study), policy=ExecutionPolicy(workers=4)
        )
        assert set(serial.runs) == set(parallel.runs)
        for key in serial.runs:
            assert_identical_runs(serial.runs[key], parallel.runs[key])

    def test_workers_one_matches_workers_four(self):
        one = make_study()
        four = make_study()
        grid_one = run_grid(one, make_spec(one), policy=ExecutionPolicy(workers=1))
        grid_four = run_grid(four, make_spec(four), policy=ExecutionPolicy(workers=4))
        for key in grid_one.runs:
            assert_identical_runs(grid_one.runs[key], grid_four.runs[key])

    def test_run_matrix_parallel_matches_serial(self):
        serial_study = make_study()
        parallel_study = make_study()
        serial = serial_study.run_matrix(
            [serial_study.constructions.all_active],
            ports=PORTS,
            tga_names=TGAS,
            budget=BUDGET,
        )
        parallel = parallel_study.run_matrix(
            [parallel_study.constructions.all_active],
            ports=PORTS,
            tga_names=TGAS,
            budget=BUDGET,
            policy=ExecutionPolicy(workers=3),
        )
        assert set(serial) == set(parallel)
        for key in serial:
            assert_identical_runs(serial[key], parallel[key])


class TestRunCellsMechanics:
    def test_results_merge_into_study_cache(self):
        study = make_study()
        dataset = study.constructions.all_active
        assert study.cached_runs == 0
        executor = ParallelExecutor(study, max_workers=2)
        results = executor.run_cells(
            [(tga, dataset, Port.ICMP, BUDGET) for tga in TGAS]
        )
        assert study.cached_runs == len(TGAS)
        for tga in TGAS:
            run = study.run(tga, dataset, Port.ICMP, budget=BUDGET)
            assert run is results[(tga, dataset.name, Port.ICMP, BUDGET)]

    def test_cached_cells_are_not_recomputed(self):
        study = make_study()
        dataset = study.constructions.all_active
        first = study.run("6tree", dataset, Port.ICMP, budget=BUDGET)
        executor = ParallelExecutor(study, max_workers=2)
        results = executor.run_cells(
            [(tga, dataset, Port.ICMP, BUDGET) for tga in TGAS]
        )
        assert results[("6tree", dataset.name, Port.ICMP, BUDGET)] is first

    def test_progress_fires_once_per_cell(self):
        study = make_study()
        dataset = study.constructions.all_active
        seen = []
        executor = ParallelExecutor(study, max_workers=2)
        executor.run_cells(
            [(tga, dataset, Port.ICMP, BUDGET) for tga in TGAS],
            progress=lambda done, total, run: seen.append((done, total)),
        )
        assert seen == [(i, len(TGAS)) for i in range(1, len(TGAS) + 1)]

    def test_none_budget_resolves_to_study_default(self):
        study = make_study()
        dataset = study.constructions.all_active
        executor = ParallelExecutor(study, max_workers=1)
        results = executor.run_cells([("6tree", dataset, Port.ICMP, None)])
        key = ("6tree", dataset.name, Port.ICMP, study.budget)
        assert key in results
        assert results[key].budget == study.budget

    def test_precompute_reports_missing_and_fills_cache(self):
        study = make_study()
        dataset = study.constructions.all_active
        cells = [(tga, dataset, Port.ICMP, BUDGET) for tga in TGAS]
        assert study.precompute(cells, policy=ExecutionPolicy(workers=2)) == len(TGAS)
        assert study.cached_runs == len(TGAS)
        # Everything cached now: nothing missing, nothing recomputed.
        assert study.precompute(cells, policy=ExecutionPolicy(workers=2)) == 0

    def test_precompute_serial_is_noop(self):
        study = make_study()
        dataset = study.constructions.all_active
        missing = study.precompute(
            [("6tree", dataset, Port.ICMP, BUDGET)], policy=ExecutionPolicy(workers=1)
        )
        assert missing == 1
        assert study.cached_runs == 0


# ---------------------------------------------------------------------------
# Property test: serial ≡ parallel across many seeds, results AND telemetry.
# ---------------------------------------------------------------------------

PROPERTY_SEEDS = tuple(range(25))
PROPERTY_TGAS = ("6tree", "6gen")
PROPERTY_BUDGET = 150


def micro_config(seed: int) -> InternetConfig:
    """A world even smaller than ``tiny`` so 25 seeds stay cheap."""
    return InternetConfig(
        master_seed=seed,
        num_ases=12,
        max_sites_per_as=2,
        server_density_min=8,
        server_density_max=24,
        cdn_density_min=12,
        cdn_density_max=30,
        enterprise_density_min=4,
        enterprise_density_max=12,
        subscriber_density_min=2,
        subscriber_density_max=8,
        mega_isp_regions=20,
    )


def run_micro_grid(seed: int, workers: int | None):
    """One fresh micro-grid run; returns (GridResult, Telemetry)."""
    study = Study(
        config=micro_config(seed),
        budget=PROPERTY_BUDGET,
        round_size=PROPERTY_BUDGET // 2,
    )
    spec = GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=PROPERTY_TGAS,
        ports=(Port.ICMP,),
        budget=PROPERTY_BUDGET,
    )
    telemetry = Telemetry()
    policy = ExecutionPolicy(workers=workers, telemetry=telemetry)
    return run_grid(study, spec, policy=policy), telemetry


def nonmeta_counters(telemetry: Telemetry) -> dict[str, int]:
    """All counters outside the sanctioned variant namespaces (the only
    names allowed to depend on the execution strategy)."""
    from repro.telemetry import SANCTIONED_VARIANT_PREFIXES

    return {
        name: value
        for name, value in telemetry.counters.items()
        if not name.startswith(SANCTIONED_VARIANT_PREFIXES)
    }


class TestCrashRecovery:
    """An injected worker crash must be invisible in the final results."""

    def test_worker_crash_recovers_bit_identically(self):
        baseline_study = make_study()
        baseline = run_grid(baseline_study, make_spec(baseline_study))

        crashed_study = make_study()
        plan = FaultPlan(rules=(FaultRule("crash", tga="6gen", port="icmp"),))
        recovered = run_grid(
            crashed_study,
            make_spec(crashed_study),
            policy=ExecutionPolicy(workers=2, fault_plan=plan, max_retries=2),
        )
        assert recovered.complete
        assert not recovered.failed_cells
        assert set(baseline.runs) == set(recovered.runs)
        for key in baseline.runs:
            assert_identical_runs(baseline.runs[key], recovered.runs[key])

    def test_exhausted_retries_degrade_to_failed_cells(self):
        study = make_study()
        plan = FaultPlan(rules=(FaultRule("crash", tga="6gen", max_fires=99),))
        results = run_grid(
            study,
            make_spec(study),
            policy=ExecutionPolicy(workers=2, fault_plan=plan, max_retries=1),
        )
        assert not results.complete
        # Exactly the 6gen cells fail — crash attribution is isolated to
        # the culprit chunk, never billed to innocent bystanders.
        assert sorted((f.tga, f.port.value) for f in results.failed_cells) == sorted(
            ("6gen", port.value) for port in PORTS
        )
        assert all(f.reason == "crash" for f in results.failed_cells)
        # Every other cell completed bit-identically to a clean serial run.
        baseline_study = make_study()
        baseline = run_grid(baseline_study, make_spec(baseline_study))
        for key, run in results.runs.items():
            assert_identical_runs(baseline.runs[key], run)


class TestSerialParallelProperty:
    """Seed-parametrized property: for any master seed, a serial grid run
    and a ``workers=2`` grid run agree on every RunResult *and* on every
    merged telemetry counter outside the sanctioned variant namespaces."""

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_serial_and_parallel_agree(self, seed):
        serial, serial_tel = run_micro_grid(seed, workers=None)
        parallel, parallel_tel = run_micro_grid(seed, workers=2)

        assert set(serial.runs) == set(parallel.runs)
        for key in serial.runs:
            assert_identical_runs(serial.runs[key], parallel.runs[key])

        assert nonmeta_counters(serial_tel) == nonmeta_counters(parallel_tel)
        # Histograms and the (deterministic) span tree must agree too.
        assert {
            name: hist.snapshot()
            for name, hist in serial_tel.histograms.items()
        } == {
            name: hist.snapshot()
            for name, hist in parallel_tel.histograms.items()
        }
        assert serial_tel.root.snapshot() == parallel_tel.root.snapshot()
