"""Tests for repro.internet.regions."""

from repro.internet import (
    COLLECTION_EPOCH,
    SCAN_EPOCH,
    PatternKind,
    Port,
    PortProfile,
    Region,
    RegionRole,
)

NET64 = 0x2001_0DB8_0001_0001


def make_region(**overrides) -> Region:
    defaults = dict(
        net64=NET64,
        asn=64500,
        role=RegionRole.SERVER,
        pattern=PatternKind.LOW,
        density=30,
        profile=PortProfile(icmp=1.0, tcp80=0.5, tcp443=0.5, udp53=0.0),
        churn_rate=0.0,
        salt=777,
    )
    defaults.update(overrides)
    return Region(**defaults)


class TestIdentity:
    def test_prefix(self):
        region = make_region()
        assert region.prefix.length == 64
        assert region.prefix.value == NET64 << 64

    def test_contains(self):
        region = make_region()
        assert region.contains(region.address_of(5))
        assert not region.contains((NET64 + 1) << 64)

    def test_address_of_masks_iid(self):
        region = make_region()
        assert region.address_of(2**64 + 7) == region.address_of(7)


class TestActiveIIDs:
    def test_density_respected(self):
        assert len(make_region().active_iids()) == 30

    def test_cached(self):
        region = make_region()
        assert region.active_iids() is region.active_iids()

    def test_aliased_has_no_iids(self):
        assert make_region(aliased=True).active_iids() == frozenset()


class TestResponsiveIIDs:
    def test_full_icmp_probability(self):
        region = make_region()
        assert region.responsive_iids(Port.ICMP, COLLECTION_EPOCH) == region.active_iids()

    def test_zero_probability_port(self):
        region = make_region()
        assert region.responsive_iids(Port.UDP53, COLLECTION_EPOCH) == frozenset()

    def test_partial_port_subset(self):
        region = make_region()
        tcp = region.responsive_iids(Port.TCP80, COLLECTION_EPOCH)
        assert tcp < region.active_iids()
        assert len(tcp) > 0

    def test_churn_shrinks_at_scan_epoch(self):
        region = make_region(churn_rate=0.5, density=100)
        before = region.responsive_iids(Port.ICMP, COLLECTION_EPOCH)
        after = region.responsive_iids(Port.ICMP, SCAN_EPOCH)
        assert after < before
        assert 20 < len(after) < 80  # ~50% churn

    def test_retired_region_dead_at_scan(self):
        region = make_region(retired=True)
        assert region.responsive_iids(Port.ICMP, COLLECTION_EPOCH)
        assert region.responsive_iids(Port.ICMP, SCAN_EPOCH) == frozenset()

    def test_firewalled_never_responds(self):
        region = make_region(firewalled=True)
        assert region.responsive_iids(Port.ICMP, COLLECTION_EPOCH) == frozenset()


class TestResponds:
    def test_member_responds(self):
        region = make_region()
        iid = next(iter(region.active_iids()))
        assert region.responds(region.address_of(iid), Port.ICMP, COLLECTION_EPOCH)

    def test_nonmember_does_not(self):
        region = make_region()
        assert not region.responds(region.address_of(2**40), Port.ICMP, COLLECTION_EPOCH)

    def test_aliased_responds_everywhere(self):
        region = make_region(aliased=True)
        for iid in (0, 1, 123456, 2**63):
            assert region.responds(region.address_of(iid), Port.ICMP, SCAN_EPOCH)

    def test_aliased_zero_probability_port(self):
        region = make_region(aliased=True, profile=PortProfile(icmp=1.0, udp53=0.0))
        assert not region.responds(region.address_of(1), Port.UDP53, SCAN_EPOCH)

    def test_rate_limited_alias_attempt_dependent(self):
        region = make_region(aliased=True, alias_response_prob=0.5)
        address = region.address_of(42)
        outcomes = {
            region.responds(address, Port.ICMP, SCAN_EPOCH, attempt=i)
            for i in range(20)
        }
        assert outcomes == {True, False}  # retries can change the answer

    def test_normal_region_attempt_independent(self):
        region = make_region()
        iid = next(iter(region.active_iids()))
        address = region.address_of(iid)
        assert all(
            region.responds(address, Port.ICMP, SCAN_EPOCH, attempt=i)
            for i in range(5)
        )

    def test_responds_any_port(self):
        region = make_region()
        iid = next(iter(region.responsive_iids(Port.ICMP, COLLECTION_EPOCH)))
        assert region.responds_any_port(region.address_of(iid), COLLECTION_EPOCH)


class TestObservables:
    def test_observables_are_members(self):
        region = make_region()
        for address in region.observable_addresses():
            assert region.contains(address)

    def test_aliased_observables_sampled(self):
        region = make_region(aliased=True, density=40)
        observed = region.observable_addresses()
        assert len(observed) >= 8
        assert all(region.contains(address) for address in observed)

    def test_sample_observable_bounds(self):
        region = make_region(density=50)
        sample = region.sample_observable(10, salt=1)
        assert len(sample) == 10
        assert set(sample) <= set(region.observable_addresses())

    def test_sample_observable_all(self):
        region = make_region(density=5)
        assert len(region.sample_observable(100, salt=1)) == 5

    def test_ever_responsive_addresses(self):
        region = make_region()
        icmp = region.ever_responsive_addresses(Port.ICMP)
        assert len(icmp) == region.density
        assert region.ever_responsive_addresses(Port.UDP53) == []
