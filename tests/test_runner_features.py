"""Tests for runner extensions: known-address exclusion, custom factories,
negative-response classification toggles."""

import itertools

from repro.experiments import run_generation
from repro.internet import Port
from repro.scanner import Scanner
from repro.tga.sixtree import SixTree


class TestKnownAddressExclusion:
    def test_known_addresses_removed_from_hits(self, internet, study):
        dataset = study.constructions.source_specific("censys")
        baseline = run_generation(
            internet, "6tree", dataset, Port.ICMP, budget=600, round_size=200
        )
        excluded = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=600,
            round_size=200,
            known_addresses=baseline.clean_hits,
        )
        assert not set(excluded.clean_hits) & set(baseline.clean_hits)
        assert excluded.metrics.hits <= baseline.metrics.hits

    def test_study_runs_never_rediscover_any_source_seed(self, study):
        dataset = study.constructions.source_specific("censys")
        run = study.run("6tree", dataset, Port.ICMP, budget=600)
        full = study.constructions.full.addresses
        assert not set(run.clean_hits) & full

    def test_empty_known_is_noop(self, internet, study):
        dataset = study.constructions.all_active
        a = run_generation(
            internet, "6gen", dataset, Port.ICMP, budget=400, round_size=200
        )
        b = run_generation(
            internet,
            "6gen",
            dataset,
            Port.ICMP,
            budget=400,
            round_size=200,
            known_addresses=frozenset(),
        )
        assert a.clean_hits == b.clean_hits


class TestTGAFactory:
    def test_factory_used(self, internet, study):
        dataset = study.constructions.all_active
        captured = {}

        def factory(salt):
            tga = SixTree(salt=salt, max_level=1)
            captured["tga"] = tga
            return tga

        result = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=400,
            round_size=200,
            tga_factory=factory,
        )
        assert captured["tga"].max_level == 1
        assert result.tga_name == "6tree"

    def test_factory_changes_output(self, internet, study):
        dataset = study.constructions.all_active
        coarse = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=600,
            round_size=200,
            tga_factory=lambda salt: SixTree(salt=salt, max_leaf_seeds=150),
        )
        default = run_generation(
            internet, "6tree", dataset, Port.ICMP, budget=600, round_size=200
        )
        assert coarse.clean_hits != default.clean_hits


class TestScannerToggles:
    def test_classify_negative_off_means_timeouts(self, internet):
        from repro.scanner import ResponseType

        region = next(
            r for r in internet.regions if not r.aliased and not r.firewalled
        )
        targets = [region.address_of(0xFFFF_0000 + i) for i in range(200)]
        quiet = Scanner(internet, classify_negative=False)
        result = quiet.scan(targets, Port.TCP80)
        assert result.stats.count(ResponseType.RST) == 0
        assert result.stats.count(ResponseType.TIMEOUT) >= 190

    def test_hits_identical_either_way(self, internet):
        targets = list(itertools.islice(internet.iter_responsive(Port.ICMP), 300))
        noisy = Scanner(internet, classify_negative=True).scan(targets, Port.ICMP)
        quiet = Scanner(internet, classify_negative=False).scan(targets, Port.ICMP)
        assert noisy.hits == quiet.hits
