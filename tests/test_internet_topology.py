"""Tests for repro.internet.topology."""

from collections import Counter

from repro.asdb import OrgType
from repro.internet import InternetConfig, RegionRole, build_topology


class TestBuildTopology:
    def test_as_count(self, internet):
        # num_ases plus the mega ISP.
        assert len(internet.registry) == internet.config.num_ases + 1

    def test_deterministic(self, tiny_config):
        a = build_topology(tiny_config)
        b = build_topology(tiny_config)
        assert [r.net64 for r in a.regions] == [r.net64 for r in b.regions]
        assert a.registry.all_asns() == b.registry.all_asns()

    def test_different_seed_differs(self, tiny_config):
        a = build_topology(tiny_config)
        b = build_topology(tiny_config.with_seed(777))
        assert {r.net64 for r in a.regions} != {r.net64 for r in b.regions}

    def test_regions_have_unique_net64(self, internet):
        net64s = [region.net64 for region in internet.regions]
        assert len(net64s) == len(set(net64s))

    def test_every_region_within_as_prefix(self, internet):
        for region in internet.regions[:300]:
            info = internet.registry.info(region.asn)
            address = region.address_of(0)
            assert any(prefix.contains(address) for prefix in info.prefixes)

    def test_regions_by_net64_cache(self, internet):
        lookup = internet.topology.regions_by_net64
        sample = internet.regions[0]
        assert lookup[sample.net64] is sample


class TestOrgMix:
    def test_multiple_org_types_present(self, internet):
        orgs = {
            internet.registry.info(asn).org_type
            for asn in internet.registry.all_asns()
        }
        assert len(orgs) >= 5

    def test_role_mix_tracks_org_type(self, internet):
        roles_by_org: dict[OrgType, Counter] = {}
        for region in internet.regions:
            org = internet.registry.info(region.asn).org_type
            roles_by_org.setdefault(org, Counter())[region.role] += 1
        # ISPs have subscribers; CDNs have servers; everyone has routers.
        if OrgType.ISP in roles_by_org:
            assert roles_by_org[OrgType.ISP][RegionRole.SUBSCRIBER] > 0
            assert roles_by_org[OrgType.ISP][RegionRole.ROUTER] > 0
        if OrgType.CDN in roles_by_org:
            assert roles_by_org[OrgType.CDN][RegionRole.SERVER] > 0

    def test_some_routers_firewalled(self, internet):
        routers = [r for r in internet.regions if r.role is RegionRole.ROUTER]
        firewalled = [r for r in routers if r.firewalled]
        assert 0 < len(firewalled) < len(routers)

    def test_only_routers_firewalled(self, internet):
        for region in internet.regions:
            if region.firewalled:
                assert region.role is RegionRole.ROUTER


class TestAliases:
    def test_alias_regions_exist(self, internet):
        assert any(region.aliased for region in internet.regions)

    def test_aliases_in_datacenter_ases(self, internet):
        for region in internet.regions:
            if region.aliased:
                org = internet.registry.info(region.asn).org_type
                assert org.is_datacenter

    def test_some_aliases_rate_limited(self, internet):
        probs = {r.alias_response_prob for r in internet.regions if r.aliased}
        assert 1.0 in probs
        assert any(p < 1.0 for p in probs)


class TestMegaISP:
    def test_registered(self, internet):
        info = internet.registry.info(internet.config.mega_isp_asn)
        assert "12322" in info.name

    def test_region_count(self, internet):
        mega = [
            r for r in internet.regions if r.asn == internet.config.mega_isp_asn
        ]
        assert len(mega) == internet.config.mega_isp_regions

    def test_low_density_icmp_heavy(self, internet):
        mega = [
            r for r in internet.regions if r.asn == internet.config.mega_isp_asn
        ]
        for region in mega[:20]:
            assert region.density == 1
            assert region.profile.icmp > region.profile.tcp443

    def test_sequential_subnets(self, internet):
        mega = sorted(
            r.net64
            for r in internet.regions
            if r.asn == internet.config.mega_isp_asn
        )
        low_parts = [net64 & 0xFFFF for net64 in mega[:0x100]]
        assert low_parts == sorted(low_parts)
