"""Tests for the RQ1–RQ4 experiment pipelines (tiny scale)."""

import math

import pytest

from repro.dealias import DealiasMode
from repro.experiments import (
    run_cross_port,
    run_rq1a,
    run_rq1b,
    run_rq2,
    run_rq3,
    run_rq4,
    table5,
    table6,
)
from repro.internet import Port

TGAS_FAST = ("6tree", "6gen")


@pytest.fixture(scope="module")
def fast_study(internet):
    from repro.experiments import Study

    return Study(internet=internet, budget=800, round_size=200, tga_names=TGAS_FAST)


class TestRQ1a:
    @pytest.fixture(scope="class")
    def result(self, fast_study):
        return run_rq1a(fast_study, ports=(Port.ICMP,))

    def test_grid_complete(self, result):
        assert len(result.runs) == len(TGAS_FAST) * 4  # 4 dealias modes

    def test_table4_shape(self, result):
        table = result.table4(Port.ICMP)
        assert set(table) == set(TGAS_FAST)
        for row in table.values():
            assert set(row) == set(DealiasMode)

    def test_joint_fewest_aliases(self, result):
        """Joint dealiasing must not generate more aliases than none."""
        table = result.table4(Port.ICMP)
        for tga, row in table.items():
            assert row[DealiasMode.JOINT] <= row[DealiasMode.NONE], tga

    def test_figure3_ratios_finite_or_inf(self, result):
        ratios = result.figure3(Port.ICMP)
        for tga, row in ratios.items():
            assert set(row) == {"hits", "ases", "aliases"}
            for value in row.values():
                assert isinstance(value, float)
                assert not math.isnan(value)


class TestRQ1b:
    @pytest.fixture(scope="class")
    def result(self, fast_study):
        return run_rq1b(fast_study, ports=(Port.ICMP,))

    def test_runs_present(self, result):
        for tga in TGAS_FAST:
            assert (tga, Port.ICMP) in result.dealiased_runs
            assert (tga, Port.ICMP) in result.active_runs

    def test_figure4_keys(self, result):
        ratios = result.figure4(Port.ICMP)
        assert set(ratios) == set(TGAS_FAST)


class TestRQ2:
    @pytest.fixture(scope="class")
    def result(self, fast_study):
        return run_rq2(fast_study, ports=(Port.ICMP, Port.TCP80))

    def test_grid(self, result):
        assert len(result.all_active_runs) == len(TGAS_FAST) * 2
        assert len(result.port_specific_runs) == len(TGAS_FAST) * 2

    def test_figure5(self, result):
        ratios = result.figure5(Port.TCP80)
        assert set(ratios) == set(TGAS_FAST)

    def test_port_specific_dataset_names(self, result):
        run = result.port_specific_runs[("6tree", Port.TCP80)]
        assert run.dataset_name == "port-tcp80"


class TestCrossPort:
    def test_matrix_shape(self, fast_study):
        result = run_cross_port(fast_study, ports=(Port.ICMP, Port.UDP53))
        matrix = result.matrix(Port.ICMP)
        assert set(matrix) == {"port-icmp", "port-udp53", "all-active"}
        for row in matrix.values():
            assert set(row) == set(TGAS_FAST)


class TestRQ3:
    @pytest.fixture(scope="class")
    def result(self, fast_study):
        return run_rq3(
            fast_study,
            ports=(Port.ICMP,),
            sources=("censys", "scamper", "hitlist"),
            budget=400,
        )

    def test_source_runs_present(self, result):
        assert ("6tree", "censys", Port.ICMP) in result.source_runs

    def test_pooled_budget(self, result):
        pooled = result.pooled_runs[("6tree", Port.ICMP)]
        assert pooled.budget == 400 * 3

    def test_combined_hits_union_excludes_seed_pool(self, result):
        combined = result.combined_hits("6tree", Port.ICMP)
        assert not combined & result.seed_pool
        for source in result.source_names:
            run_hits = set(result.source_runs[("6tree", source, Port.ICMP)].clean_hits)
            assert run_hits - result.seed_pool <= combined

    def test_table5_rows(self, result):
        rows = table5(result)
        assert [row.tga for row in rows] == list(TGAS_FAST)
        for row in rows:
            assert row.combined_hits >= 0
            assert row.pooled_hits >= 0

    def test_table6_characterizations(self, result, fast_study):
        chars = table6(result, fast_study)
        assert ("censys", Port.ICMP) in chars
        entry = chars[("censys", Port.ICMP)]
        assert entry.total_ases >= 0


class TestRQ4:
    @pytest.fixture(scope="class")
    def result(self, fast_study):
        return run_rq4(fast_study, ports=(Port.ICMP,))

    def test_figure6_hits_cover_union(self, result):
        steps = result.figure6_hits(Port.ICMP)
        assert [s.name for s in steps]
        assert steps[-1].cumulative == result.ensemble_hits(Port.ICMP)

    def test_figure6_ases(self, result):
        steps = result.figure6_ases(Port.ICMP)
        assert len(steps) == len(TGAS_FAST)

    def test_ensemble_at_least_best_single(self, result):
        best_single = max(
            result.runs[(tga, Port.ICMP)].metrics.hits for tga in TGAS_FAST
        )
        assert result.ensemble_hits(Port.ICMP) >= best_single

    def test_hit_overlap_keys(self, result):
        overlap = result.hit_overlap(Port.ICMP)
        assert len(overlap) == len(TGAS_FAST) * (len(TGAS_FAST) - 1) // 2
