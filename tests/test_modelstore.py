"""Tests for repro.tga.modelstore: the persistent prepared-model store.

The store is a disk tier under the in-memory ModelCache; its contract
is that it can never change results — every entry is digest-verified on
load, corruption degrades to a rebuild, and concurrent processes race
benignly.
"""

import concurrent.futures
import os
import pickle

import pytest

from repro.tga import (
    ModelStore,
    get_model_store,
    resolve_model_store,
    set_model_store,
    use_model_store,
)
from repro.tga.modelstore import _MAGIC


def make_store(tmp_path, **kwargs) -> ModelStore:
    return ModelStore(tmp_path / "store", **kwargs)


class TestRoundtrip:
    def test_store_then_load_returns_equal_artifact(self, tmp_path):
        store = make_store(tmp_path)
        artifact = {"model": [1, 2, 3], "weights": (0.5, 0.25)}
        assert store.store("6graph", 123, ("a", 1), artifact)
        loaded = store.load("6graph", 123, ("a", 1))
        assert loaded == artifact
        assert store.stats.stores == 1
        assert store.stats.hits == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        assert store.load("6tree", 1, ()) is None
        assert store.stats.misses == 1

    def test_keying_separates_kind_fingerprint_params(self, tmp_path):
        store = make_store(tmp_path)
        store.store("a", 1, (), "artifact-a")
        assert store.load("b", 1, ()) is None
        assert store.load("a", 2, ()) is None
        assert store.load("a", 1, ("p",)) is None
        assert store.load("a", 1, ()) == "artifact-a"

    def test_version_bump_is_a_cold_start(self, tmp_path, monkeypatch):
        store = make_store(tmp_path)
        store.store("eip", 7, (), "old-generation")
        monkeypatch.setattr(
            "repro.tga.modelstore._package_version", lambda: "999.0"
        )
        # The old entry is invisible under the new version...
        assert store.load("eip", 7, ()) is None
        # ...and a new-version entry lives alongside it.
        store.store("eip", 7, (), "new-generation")
        assert store.load("eip", 7, ()) == "new-generation"
        assert len(store.entries()) == 2

    def test_unpicklable_artifact_degrades_to_no_persistence(self, tmp_path):
        store = make_store(tmp_path)
        assert not store.store("6gen", 1, (), lambda: None)
        assert store.stats.errors == 1
        assert store.entries() == []


class TestCorruption:
    def corrupt(self, store, mutate):
        store.store("det", 42, (), {"payload": list(range(100))})
        (path,) = store.entries()
        mutate(path)
        return path

    def test_truncated_entry_dropped_and_rebuilt(self, tmp_path):
        store = make_store(tmp_path)
        path = self.corrupt(
            store, lambda p: p.write_bytes(p.read_bytes()[: len(_MAGIC) + 10])
        )
        assert store.load("det", 42, ()) is None
        assert not path.exists()
        assert store.stats.corrupt_dropped == 1

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        store = make_store(tmp_path)

        def flip(path):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))

        self.corrupt(store, flip)
        assert store.load("det", 42, ()) is None
        assert store.stats.corrupt_dropped == 1

    def test_bad_magic_rejected(self, tmp_path):
        store = make_store(tmp_path)
        self.corrupt(store, lambda p: p.write_bytes(b"junk" + p.read_bytes()))
        assert store.load("det", 42, ()) is None

    def test_valid_pickle_with_wrong_digest_rejected(self, tmp_path):
        # An attacker-shaped case: a well-formed pickle whose recorded
        # digest does not match must not be trusted.
        store = make_store(tmp_path)
        store.store("det", 42, (), "original")
        (path,) = store.entries()
        payload = pickle.dumps("tampered")
        blob = path.read_bytes()
        header_len = blob.index(b"\n", len(_MAGIC)) + 1
        path.write_bytes(blob[:header_len] + payload)
        assert store.load("det", 42, ()) is None

    def test_get_or_build_rebuilds_after_corruption(self, tmp_path):
        store = make_store(tmp_path)
        calls = []
        builder = lambda: calls.append(1) or "fresh"
        assert store.get_or_build("6hit", 9, (), builder) == "fresh"
        (path,) = store.entries()
        path.write_bytes(b"garbage")
        assert store.get_or_build("6hit", 9, (), builder) == "fresh"
        assert len(calls) == 2
        # The rebuilt entry persisted and is valid again.
        assert store.load("6hit", 9, ()) == "fresh"


class TestGetOrBuild:
    def test_second_call_serves_from_disk(self, tmp_path):
        store = make_store(tmp_path)
        calls = []
        builder = lambda: calls.append(1) or {"m": 1}
        assert store.get_or_build("6scan", 5, (), builder) == {"m": 1}
        assert store.get_or_build("6scan", 5, (), builder) == {"m": 1}
        assert len(calls) == 1

    def test_fresh_store_on_same_root_shares_entries(self, tmp_path):
        a = make_store(tmp_path)
        a.store("6sense", 3, (), "shared")
        b = make_store(tmp_path)
        assert b.load("6sense", 3, ()) == "shared"

    def test_held_lock_makes_latecomer_build_after_timeout(self, tmp_path):
        store = make_store(tmp_path, lock_timeout=0.2)
        path = store.entry_path("6tree", 1, ())
        store.root.mkdir(parents=True, exist_ok=True)
        lock = path.with_name(path.name + ".lock")
        lock.write_text("someone-else")
        try:
            assert store.get_or_build("6tree", 1, (), lambda: "built") == "built"
        finally:
            lock.unlink(missing_ok=True)

    def test_stale_lock_is_broken(self, tmp_path):
        store = make_store(tmp_path, lock_timeout=0.2)
        path = store.entry_path("6tree", 1, ())
        store.root.mkdir(parents=True, exist_ok=True)
        lock = path.with_name(path.name + ".lock")
        lock.write_text("dead-builder")
        os.utime(lock, (0, 0))
        assert store.get_or_build("6tree", 1, (), lambda: "built") == "built"


class TestEviction:
    def test_oldest_entries_evicted_under_byte_budget(self, tmp_path):
        store = make_store(tmp_path, max_bytes=1)
        store.store("a", 1, (), "x" * 100)
        store.store("b", 2, (), "y" * 100)
        # Budget of one byte: only the newest write survives.
        assert len(store.entries()) == 1
        assert store.load("b", 2, ()) == "y" * 100
        assert store.stats.evictions >= 1

    def test_hot_entries_survive_via_mtime_touch(self, tmp_path):
        store = make_store(tmp_path, max_bytes=10_000_000)
        store.store("a", 1, (), "x" * 100)
        store.store("b", 2, (), "y" * 100)
        # Make "a" hot (newest mtime), then shrink the budget so the
        # next write must evict exactly one entry: "b" is now the
        # oldest and goes first.
        for path in store.entries():
            os.utime(path, (1, 1))
        store.load("a", 1, ())
        entry_size = store.entries()[0].stat().st_size
        store.max_bytes = 2 * entry_size + entry_size // 2
        store.store("c", 3, (), "z" * 100)
        assert store.load("a", 1, ()) == "x" * 100
        assert store.load("b", 2, ()) is None

    def test_clear_removes_everything(self, tmp_path):
        store = make_store(tmp_path)
        store.store("a", 1, (), "x")
        store.clear()
        assert store.entries() == []


class TestProcessState:
    def test_inactive_by_default(self):
        assert get_model_store() is None

    def test_use_model_store_scopes_activation(self, tmp_path):
        store = make_store(tmp_path)
        with use_model_store(store):
            assert get_model_store() is store
            with use_model_store(None):
                assert get_model_store() is None
            assert get_model_store() is store
        assert get_model_store() is None

    def test_set_model_store(self, tmp_path):
        store = make_store(tmp_path)
        set_model_store(store)
        try:
            assert get_model_store() is store
        finally:
            set_model_store(None)

    def test_resolve_model_store(self, tmp_path):
        assert resolve_model_store(None) is None
        assert resolve_model_store(False) is None
        rooted = resolve_model_store(tmp_path / "r")
        assert isinstance(rooted, ModelStore)
        assert rooted.root == tmp_path / "r"
        store = make_store(tmp_path)
        assert resolve_model_store(store) is store
        default = resolve_model_store(True)
        assert isinstance(default, ModelStore)

    def test_env_var_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_STORE", str(tmp_path / "env-root"))
        assert ModelStore().root == tmp_path / "env-root"


def _race_one(root: str, index: int):
    """Worker for the concurrency test: build-or-load the same entry."""
    store = ModelStore(root, lock_timeout=10.0)
    artifact = store.get_or_build(
        "race", 77, (), lambda: {"model": sorted(range(1000))}
    )
    return artifact == {"model": sorted(range(1000))}, store.stats.as_dict()


class TestConcurrency:
    def test_two_processes_racing_same_entry(self, tmp_path):
        """Two separate processes get_or_build the same key concurrently:
        both must come back with the correct artifact and the surviving
        on-disk entry must be valid (no torn writes)."""
        root = str(tmp_path / "store")
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(pool.map(_race_one, [root, root], [0, 1]))
        assert all(ok for ok, _stats in outcomes)
        # Exactly one entry, and it decodes cleanly for a third reader.
        verifier = ModelStore(root)
        assert len(verifier.entries()) == 1
        assert verifier.load("race", 77, ()) == {"model": sorted(range(1000))}
        # The lock was cleaned up (no .lock litter left behind).
        assert not list(verifier.root.glob("*.lock"))
