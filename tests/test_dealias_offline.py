"""Tests for repro.dealias.offline."""

from repro.addr import Prefix, parse_address
from repro.dealias import OfflineDealiaser


class TestOfflineDealiaser:
    def test_filters_published(self):
        dealiaser = OfflineDealiaser([Prefix.parse("2001:db8::/64")])
        inside = parse_address("2001:db8::99")
        outside = parse_address("2a00::1")
        assert dealiaser.is_aliased(inside)
        assert not dealiaser.is_aliased(outside)
        assert dealiaser.filter([inside, outside]) == {outside}

    def test_partition(self):
        dealiaser = OfflineDealiaser([Prefix.parse("2001:db8::/64")])
        clean, aliased = dealiaser.partition(
            [parse_address("2001:db8::1"), parse_address("2a00::1")]
        )
        assert len(clean) == 1 and len(aliased) == 1

    def test_len(self):
        assert len(OfflineDealiaser([Prefix.parse("::/64")])) == 1


class TestFromInternet:
    def test_uses_published_list(self, internet):
        dealiaser = OfflineDealiaser.from_internet(internet)
        assert len(dealiaser) == len(internet.published_alias_prefixes)

    def test_misses_unpublished_aliases(self, internet):
        """The published list is incomplete by construction — the very
        limitation the paper's RQ1.a demonstrates."""
        dealiaser = OfflineDealiaser.from_internet(internet)
        published = set(internet.published_alias_prefixes)
        unpublished = [
            prefix
            for prefix in internet.true_alias_prefixes
            if prefix not in published
        ]
        assert unpublished, "config should leave some aliases unpublished"
        for prefix in unpublished[:10]:
            assert not dealiaser.is_aliased(prefix.value | 12345)

    def test_catches_published_aliases(self, internet):
        dealiaser = OfflineDealiaser.from_internet(internet)
        for prefix in internet.published_alias_prefixes[:10]:
            assert dealiaser.is_aliased(prefix.value | 4321)
