"""Tests for the versioned public facade (:mod:`repro.api`)."""

import json

import pytest

import repro.api as api
from repro.api import (
    DATASETS,
    SCALES,
    ExecutionPolicy,
    InvalidSpecError,
    ReproError,
    RunResult,
    StudySpec,
    load_results,
    run_study,
)
from repro.errors import NotFoundError, RateLimitedError, error_from_dict
from repro.tga import ALL_TGA_NAMES, canonical_tga_name

SMALL = dict(scale="tiny", budget=300, tgas=("6gen", "6tree"), ports=("icmp",))


class TestStudySpec:
    def test_defaults_resolve_round_size(self):
        spec = StudySpec()
        assert spec.round_size == max(200, spec.budget // 5)
        assert spec.tgas == ALL_TGA_NAMES
        assert spec.size == len(ALL_TGA_NAMES)

    def test_default_and_explicit_round_size_share_a_digest(self):
        implicit = StudySpec(budget=1_000)
        explicit = StudySpec(budget=1_000, round_size=200)
        assert implicit == explicit
        assert implicit.digest == explicit.digest

    def test_round_trip_through_dict(self):
        spec = StudySpec(**SMALL)
        clone = StudySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest == spec.digest
        # The canonical dict itself is JSON-stable.
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_digest_is_content_addressed(self):
        spec = StudySpec(**SMALL)
        assert spec.digest.startswith("sha256:")
        assert spec.digest != StudySpec(**{**SMALL, "budget": 301}).digest
        assert spec.digest != StudySpec(**{**SMALL, "seed": 43}).digest

    def test_tga_aliases_canonicalise(self):
        canonical = canonical_tga_name("6gen")
        spec = StudySpec(tgas=("6gen",))
        assert spec.tgas == (canonical,)

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"scale": "planetary"}, "scale"),
            ({"seed": "forty-two"}, "seed"),
            ({"budget": 0}, "budget"),
            ({"round_size": -1}, "round_size"),
            ({"dataset": "imaginary"}, "dataset"),
            ({"tgas": ()}, "tgas"),
            ({"tgas": ("7tree",)}, "tgas"),
            ({"ports": ()}, "ports"),
            ({"ports": ("tcp1234",)}, "ports"),
        ],
    )
    def test_validation_names_the_field(self, kwargs, field):
        with pytest.raises(InvalidSpecError) as excinfo:
            StudySpec(**kwargs)
        assert excinfo.value.detail["field"] == field
        assert excinfo.value.code == "invalid_spec"

    def test_from_dict_rejects_non_objects(self):
        with pytest.raises(InvalidSpecError):
            StudySpec.from_dict("not a dict")
        with pytest.raises(InvalidSpecError):
            StudySpec.from_dict(None)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidSpecError) as excinfo:
            StudySpec.from_dict({"budget": 500, "bogus": 1})
        assert excinfo.value.detail["unknown"] == ["bogus"]

    def test_from_dict_rejects_non_string_lists(self):
        with pytest.raises(InvalidSpecError):
            StudySpec.from_dict({"tgas": [1, 2]})
        with pytest.raises(InvalidSpecError):
            StudySpec.from_dict({"ports": "icmp"})

    def test_scales_and_datasets_are_exported(self):
        assert set(SCALES) == {"tiny", "bench", "small", "internet"}
        assert DATASETS == ("active", "full", "offline", "online", "joint")


class TestErrors:
    def test_structured_errors_keep_builtin_ancestry(self):
        assert issubclass(InvalidSpecError, ValueError)
        assert issubclass(NotFoundError, KeyError)
        error = InvalidSpecError("nope", detail={"field": "budget"})
        assert str(error) == "nope"  # no KeyError repr-ization

    def test_to_dict_wire_shape(self):
        error = RateLimitedError("slow down", detail={"retry_after": 0.5})
        body = error.to_dict()
        assert body == {
            "error": {
                "code": "rate_limited",
                "message": "slow down",
                "detail": {"retry_after": 0.5},
            }
        }

    def test_error_round_trips_through_the_wire_shape(self):
        original = RateLimitedError("slow down", detail={"retry_after": 0.5})
        rebuilt = error_from_dict(original.to_dict(), http_status=429)
        assert isinstance(rebuilt, RateLimitedError)
        assert rebuilt.detail == original.detail
        assert rebuilt.http_status == 429

    def test_unknown_codes_degrade_to_base_error(self):
        rebuilt = error_from_dict(
            {"error": {"code": "brand_new", "message": "hi", "detail": {}}}
        )
        assert type(rebuilt) is ReproError
        assert rebuilt.code == "brand_new"


class TestRunStudy:
    def test_returns_a_study_result(self):
        spec = StudySpec(**SMALL)
        result = run_study(spec)
        assert result.spec == spec
        assert result.digest == spec.digest
        assert set(result.runs) == {
            (tga, "all-active", port)
            for tga in spec.tgas
            for port in spec.port_objects
        }
        run = result.get("6gen", "icmp")
        assert isinstance(run, RunResult)
        assert run.metrics.hits >= 0
        assert result.best() in result.runs.values()

    def test_is_deterministic(self):
        spec = StudySpec(**SMALL)
        assert run_study(spec).to_rows() == run_study(spec).to_rows()

    def test_policy_never_changes_results(self):
        spec = StudySpec(**SMALL)
        plain = run_study(spec)
        tuned = run_study(spec, policy=ExecutionPolicy(workers=1, max_retries=0))
        assert plain.to_rows() == tuned.to_rows()

    def test_checkpoint_round_trips_through_load_results(self, tmp_path):
        spec = StudySpec(**SMALL)
        checkpoint = tmp_path / "study.jsonl"
        direct = run_study(
            spec, policy=ExecutionPolicy(checkpoint=str(checkpoint))
        )
        restored = load_results(checkpoint)
        assert len(restored) == spec.size
        assert {run.tga_name for run in restored} == set(spec.tgas)
        by_name = {run.tga_name: run for run in restored}
        for tga in spec.tgas:
            assert by_name[tga].metrics.hits == direct.get(tga, "icmp").metrics.hits


class TestFacadeSurface:
    def test_everything_in_all_is_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_api_version(self):
        assert api.API_VERSION == "1"
