"""Golden regression test for the telemetry subsystem.

Runs the tiny fixed-seed grid defined in :mod:`tests.golden_telemetry`
and asserts the recorded counters, span tree and full event stream are
*exactly* equal to the checked-in fixture.  Any drift — a renamed
counter, a reordered event, a changed batch size — fails loudly here.

If the change is intentional, regenerate the fixture with::

    PYTHONPATH=src python -m tests.regen_telemetry_golden

and commit the updated ``tests/data/telemetry_golden.json``.
"""

import pytest

from .golden_telemetry import (
    GOLDEN_PATH,
    compute_golden_payload,
    load_golden_payload,
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return compute_golden_payload()


class TestTelemetryGolden:
    def test_fixture_exists(self):
        assert GOLDEN_PATH.is_file(), (
            "missing golden fixture; regenerate with "
            "PYTHONPATH=src python -m tests.regen_telemetry_golden"
        )

    def test_snapshot_matches_fixture_exactly(self, payload):
        golden = load_golden_payload()
        assert payload["snapshot"]["counters"] == golden["snapshot"]["counters"]
        assert payload["snapshot"]["spans"] == golden["snapshot"]["spans"]
        assert payload["snapshot"] == golden["snapshot"]

    def test_event_stream_matches_fixture_exactly(self, payload):
        golden = load_golden_payload()
        assert payload["events"] == golden["events"]

    def test_snapshot_has_no_wall_clock_fields(self, payload):
        """The fixture must stay deterministic: no wall times anywhere."""

        def assert_no_wall(span: dict) -> None:
            assert "wall" not in span
            for child in span.get("children", ()):
                assert_no_wall(child)

        assert_no_wall(payload["snapshot"]["spans"])
