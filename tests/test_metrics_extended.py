"""Tests for repro.metrics.extended (the future-work diversity metrics)."""

import math

import pytest

from repro.metrics import as_entropy, diversity_report, prefix_diversity


class TestASEntropy:
    def test_empty(self, internet):
        assert as_entropy([], internet.registry) == 0.0

    def test_single_as_zero_entropy(self, internet):
        region = internet.regions[0]
        addresses = [region.address_of(i) for i in range(10)]
        assert as_entropy(addresses, internet.registry) == pytest.approx(0.0)

    def test_uniform_two_ases_one_bit(self, internet):
        regions = []
        seen = set()
        for region in internet.regions:
            if region.asn not in seen:
                seen.add(region.asn)
                regions.append(region)
            if len(regions) == 2:
                break
        addresses = [regions[0].address_of(i) for i in range(5)]
        addresses += [regions[1].address_of(i) for i in range(5)]
        assert as_entropy(addresses, internet.registry) == pytest.approx(1.0)

    def test_skew_lowers_entropy(self, internet):
        regions = []
        seen = set()
        for region in internet.regions:
            if region.asn not in seen:
                seen.add(region.asn)
                regions.append(region)
            if len(regions) == 2:
                break
        balanced = [regions[0].address_of(i) for i in range(5)] + [
            regions[1].address_of(i) for i in range(5)
        ]
        skewed = [regions[0].address_of(i) for i in range(9)] + [
            regions[1].address_of(0)
        ]
        assert as_entropy(skewed, internet.registry) < as_entropy(
            balanced, internet.registry
        )


class TestPrefixDiversity:
    def test_empty(self):
        assert prefix_diversity([]) == (0, 0, 0)

    def test_single_slash64(self):
        base = 0x2001_0DB8_0000_0001 << 64
        addresses = [base | i for i in range(10)]
        assert prefix_diversity(addresses) == (1, 1, 1)

    def test_hierarchy_counts(self):
        a = 0x2001_0DB8_0001_0001 << 64  # 2001:db8:1:1::/64
        b = 0x2001_0DB8_0001_0002 << 64  # same /48, other /64
        c = 0x2001_0DB8_0002_0001 << 64  # same /32, other /48
        d = 0x2400_0001_0000_0001 << 64  # other /32
        s32, s48, s64 = prefix_diversity([a, b, c, d])
        assert (s32, s48, s64) == (2, 3, 4)

    def test_monotone(self):
        addresses = [(0x2001_0DB8_0000_0000 + i) << 64 for i in range(20)]
        s32, s48, s64 = prefix_diversity(addresses)
        assert s32 <= s48 <= s64


class TestDiversityReport:
    def test_report_fields(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:50]]
        report = diversity_report(addresses, internet.registry)
        assert report.addresses == 50
        assert report.ases == len(internet.registry.ases_of(addresses))
        assert report.distinct_slash64 == len({a >> 64 for a in addresses})
        assert 0.0 <= report.org_simpson <= 1.0
        assert report.org_types >= 1
        assert not math.isnan(report.as_entropy_bits)

    def test_empty_report(self, internet):
        report = diversity_report([], internet.registry)
        assert report.addresses == 0
        assert report.org_simpson == 0.0

    def test_single_org_zero_simpson(self, internet):
        region = internet.regions[0]
        report = diversity_report(
            [region.address_of(i) for i in range(5)], internet.registry
        )
        assert report.org_simpson == 0.0

    def test_as_dict_roundtrip(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:10]]
        info = diversity_report(addresses, internet.registry).as_dict()
        assert info["addresses"] == 10
        assert set(info) >= {"ases", "as_entropy_bits", "org_simpson"}
