"""Edge-case coverage across packages: empty inputs, degenerate worlds,
and boundary conditions not exercised elsewhere."""

import pytest

from repro.datasets import DatasetCollection, SeedDataset, SourceKind, overlap_by_ip
from repro.internet import InternetConfig, Port, SimulatedInternet
from repro.metrics import characterize_ases, cumulative_contributions
from repro.scanner import Scanner
from repro.tga import create_tga


class TestEmptyInputs:
    def test_scan_empty_target_list(self, internet):
        result = Scanner(internet).scan([], Port.ICMP)
        assert result.num_hits == 0
        assert result.stats.probes_sent == 0

    def test_overlap_with_empty_dataset(self):
        collection = DatasetCollection(
            [
                SeedDataset(name="empty", kind=SourceKind.DOMAIN, addresses=frozenset()),
                SeedDataset(name="full", kind=SourceKind.DOMAIN, addresses=frozenset({1})),
            ]
        )
        matrix = overlap_by_ip(collection)
        assert matrix.cells["empty"]["full"] == 0.0
        assert matrix.any_other["empty"] == 0.0

    def test_cumulative_contributions_empty_dict(self):
        assert cumulative_contributions({}) == []

    def test_characterize_top_zero(self, internet):
        result = characterize_ases(
            [internet.regions[0].address_of(1)], internet.registry, top_n=0
        )
        assert result.top == ()
        assert result.total_ases == 1


class TestSingleSeedGenerators:
    """Every generator must cope with a single-seed dataset."""

    @pytest.mark.parametrize(
        "name", ["6tree", "6scan", "det", "6hit", "6gen", "6graph", "6sense", "eip"]
    )
    def test_single_seed(self, name):
        tga = create_tga(name)
        tga.prepare([(0x20010DB8 << 96) | 1])
        batch = tga.propose(50)
        # EIP's model space collapses to the seed itself; every other
        # generator expands the neighbourhood.
        if name != "eip":
            assert batch, name
        assert (0x20010DB8 << 96) | 1 not in batch


class TestDegenerateWorlds:
    def test_minimal_as_count(self):
        config = InternetConfig(
            num_ases=2,
            max_sites_per_as=1,
            mega_isp_regions=4,
        )
        internet = SimulatedInternet(config)
        assert len(internet.registry) == 3  # 2 + mega
        assert internet.regions

    def test_zero_alias_world(self):
        import dataclasses

        config = dataclasses.replace(
            InternetConfig.tiny(), alias_region_fraction=0.0
        )
        internet = SimulatedInternet(config)
        assert not internet.true_alias_prefixes
        assert not internet.published_alias_prefixes

    def test_full_published_coverage(self):
        import dataclasses

        config = dataclasses.replace(
            InternetConfig.tiny(), published_alias_coverage=1.0
        )
        internet = SimulatedInternet(config)
        assert set(internet.published_alias_prefixes) == set(
            internet.true_alias_prefixes
        )


class TestBoundaryBudgets:
    def test_budget_one(self, internet, study):
        from repro.experiments import run_generation

        result = run_generation(
            internet,
            "6tree",
            study.constructions.all_active,
            Port.ICMP,
            budget=1,
            round_size=10,
        )
        assert result.generated == 1

    def test_round_size_larger_than_budget(self, internet, study):
        from repro.experiments import run_generation

        result = run_generation(
            internet,
            "6gen",
            study.constructions.all_active,
            Port.ICMP,
            budget=50,
            round_size=100_000,
        )
        assert result.generated == 50
