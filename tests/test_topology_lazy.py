"""Lazy/eager equivalence property suite for the streaming topology.

The contract under test: :class:`LazyTopology` is a *cache*, never a
*source of truth*.  Every AS derives as a pure function of
``(master_seed, rank)``, so the lazy topology must yield bit-identical
regions, registry answers and probe results to the eager
:func:`build_topology` walk — across world scales, master seeds, probe
epochs, and (the key property) **any touch order**, including orders
that force LRU evictions and re-derivations.
"""

import random

import pytest

from repro.addr.vector import use_vectorized
from repro.internet import InternetConfig, SimulatedInternet
from repro.internet.ports import ALL_PORTS, Port
from repro.internet.regions import COLLECTION_EPOCH, SCAN_EPOCH
from repro.internet.topology import (
    MAX_ASES,
    LazyTopology,
    asn_for_rank,
    build_topology,
    derive_as,
    derive_as_info,
    mega_isp_info,
    rank_for_asn,
    rank_for_top32,
    slash32_for_rank,
)

SWEEP_SEEDS = (0, 1, 7, 42, 1337)


def micro_config(seed: int = 42, **overrides) -> InternetConfig:
    """A 12-AS world: small enough to sweep seeds exhaustively."""
    params = dict(
        master_seed=seed,
        num_ases=12,
        max_sites_per_as=2,
        server_density_min=8,
        server_density_max=24,
        cdn_density_min=12,
        cdn_density_max=30,
        enterprise_density_min=4,
        enterprise_density_max=12,
        subscriber_density_min=2,
        subscriber_density_max=8,
        mega_isp_regions=20,
    )
    params.update(overrides)
    return InternetConfig(**params)


def fingerprint(region):
    """Every ground-truth field of a region (cache fields excluded)."""
    return (
        region.net64,
        region.asn,
        region.role,
        region.pattern,
        region.density,
        region.profile,
        region.churn_rate,
        region.retired,
        region.firewalled,
        region.aliased,
        region.alias_response_prob,
        region.salt,
    )


class TestRankMappings:
    """The invertible allocation maths underneath ``regions_by_net64``."""

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_asn_round_trips(self, seed):
        config = InternetConfig.tiny(master_seed=seed)
        seen = set()
        for rank in range(config.num_ases):
            asn = asn_for_rank(config, rank)
            assert asn % 2 == 1, "generated ASNs are odd by construction"
            assert rank_for_asn(config, asn) == rank
            seen.add(asn)
        assert len(seen) == config.num_ases, "ASN assignment is a permutation"

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_slash32_round_trips(self, seed):
        config = InternetConfig.tiny(master_seed=seed)
        seen = set()
        for rank in range(config.num_ases):
            top32 = slash32_for_rank(config, rank) >> 96
            assert rank_for_top32(config, top32) == rank
            seen.add(top32)
        assert len(seen) == config.num_ases, "/32 allocation is collision-free"

    def test_mega_asn_never_collides(self):
        config = InternetConfig.tiny()
        assert config.mega_isp_asn % 2 == 0
        assert rank_for_asn(config, config.mega_isp_asn) is None

    def test_unallocated_space_maps_to_nothing(self):
        config = InternetConfig.tiny()
        allocated = {slash32_for_rank(config, r) >> 96 for r in range(config.num_ases)}
        rng = random.Random(9)
        probed = 0
        while probed < 200:
            top32 = rng.getrandbits(32)
            if top32 in allocated:
                continue
            probed += 1
            rank = rank_for_top32(config, top32)
            if rank is not None:
                # An inverse hit must recompose to this exact top32.
                assert slash32_for_rank(config, rank) >> 96 == top32

    def test_num_ases_above_capacity_rejected(self):
        with pytest.raises(ValueError, match="allocation plan"):
            LazyTopology(InternetConfig(num_ases=MAX_ASES + 1))


class TestDerivationPurity:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_derive_as_is_deterministic(self, seed):
        config = micro_config(seed)
        for rank in range(config.num_ases):
            info_a, regions_a = derive_as(config, rank)
            info_b, regions_b = derive_as(config, rank)
            assert info_a == info_b
            assert [fingerprint(r) for r in regions_a] == [
                fingerprint(r) for r in regions_b
            ]

    def test_header_derivation_matches_full(self):
        config = InternetConfig.tiny()
        for rank in range(config.num_ases):
            assert derive_as_info(config, rank) == derive_as(config, rank)[0]


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_iter_regions_matches_eager_walk(self, seed):
        config = micro_config(seed)
        eager = build_topology(config)
        lazy = LazyTopology(config)
        streamed = list(lazy.iter_regions())
        assert len(streamed) == len(eager.regions)
        for got, want in zip(streamed, eager.regions):
            assert fingerprint(got) == fingerprint(want)

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_point_lookups_match_eager_dict(self, seed):
        config = micro_config(seed)
        eager = build_topology(config)
        lazy = LazyTopology(config)
        for region in eager.regions:
            got = lazy.regions_by_net64[region.net64]
            assert fingerprint(got) == fingerprint(region)
        assert lazy.regions_by_net64.get(0xDEAD_BEEF_0000_0000) is None
        assert 0xDEAD_BEEF_0000_0000 not in lazy.regions_by_net64

    def test_touch_order_independence_under_eviction(self):
        """The key property: any touch order, with an LRU small enough
        to evict and re-derive constantly, answers like the eager walk."""
        config = micro_config(7)
        eager = build_topology(config)
        expected = {region.net64: fingerprint(region) for region in eager.regions}
        net64s = list(expected)
        for order_seed in range(5):
            lazy = LazyTopology(config, max_resident_ases=2)
            shuffled = net64s[:]
            random.Random(order_seed).shuffle(shuffled)
            # Touch everything twice: the second pass hits re-derived
            # entries for anything the tiny LRU evicted.
            for net64 in shuffled + shuffled[::-1]:
                assert fingerprint(lazy.region_for_net64(net64)) == expected[net64]
            assert lazy.resident_ases <= 2
            assert lazy.evicted_ases > 0, "a 2-entry LRU must have evicted"

    def test_pin_all_preserves_identity(self):
        config = micro_config(1)
        lazy = LazyTopology(config)
        regions = lazy.regions  # pins
        assert lazy.pinned
        sample = random.Random(3).sample(regions, 20)
        for region in sample:
            assert lazy.regions_by_net64[region.net64] is region

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_registry_answers_match_eager(self, seed):
        config = micro_config(seed)
        eager = build_topology(config)
        lazy = LazyTopology(config)
        assert len(lazy.registry) == len(eager.registry)
        assert lazy.registry.all_asns() == eager.registry.all_asns()
        assert lazy.registry.announced_prefixes() == eager.registry.announced_prefixes()
        for asn in eager.registry.all_asns():
            assert asn in lazy.registry
            assert lazy.registry.info(asn) == eager.registry.info(asn)
        assert 999_999_999 not in lazy.registry
        with pytest.raises(KeyError):
            lazy.registry.info(999_999_999)
        rng = random.Random(seed)
        addresses = [
            region.address_of(rng.getrandbits(16)) for region in eager.regions
        ] + [rng.getrandbits(128) for _ in range(100)]
        for address in addresses:
            assert lazy.registry.asn_of(address) == eager.registry.asn_of(address)
        assert lazy.registry.ases_of(addresses) == eager.registry.ases_of(addresses)
        assert lazy.registry.count_by_as(addresses) == eager.registry.count_by_as(
            addresses
        )
        assert lazy.registry.group_by_as(addresses) == eager.registry.group_by_as(
            addresses
        )

    def test_registry_header_queries_do_not_materialise_regions(self):
        config = InternetConfig.tiny()
        lazy = LazyTopology(config)
        for asn in lazy.registry.all_asns():
            lazy.registry.info(asn)
        assert lazy.materialized_ases == 0

    def test_registry_is_read_only(self):
        lazy = LazyTopology(micro_config())
        with pytest.raises(TypeError):
            lazy.registry.register(mega_isp_info(lazy.config))
        with pytest.raises(TypeError):
            lazy.registry.announce(None, 1)

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_mega_run_matches_eager_tail(self, seed):
        config = micro_config(seed)
        eager = build_topology(config)
        lazy = LazyTopology(config)
        mega_tail = eager.regions[-config.mega_isp_regions :]
        assert all(r.asn == config.mega_isp_asn for r in mega_tail)
        for region in mega_tail:
            assert fingerprint(lazy.region_for_net64(region.net64)) == fingerprint(
                region
            )


class TestProbeEquivalence:
    """End-to-end: probing the lazy world ≡ probing the eager regions."""

    @pytest.mark.parametrize("seed", (0, 42))
    @pytest.mark.parametrize("epoch", (COLLECTION_EPOCH, SCAN_EPOCH))
    def test_probe_batch_matches_eager_regions(self, seed, epoch):
        config = micro_config(seed)
        eager = build_topology(config)
        internet = SimulatedInternet(config)
        rng = random.Random(seed)
        targets = []
        expected = set()
        for region in eager.regions:
            group = [region.address_of(rng.getrandbits(10)) for _ in range(4)]
            group.extend(region.address_of(iid) for iid in list(region.active_iids())[:4])
            targets.extend(group)
            expected |= region.respond_batch(group, Port.ICMP, epoch)
        targets.extend(rng.getrandbits(128) for _ in range(64))  # unallocated
        assert internet.probe_batch(targets, Port.ICMP, epoch) == expected

    def test_vector_and_scalar_paths_agree_on_lazy_world(self):
        config = micro_config(3)
        rng = random.Random(3)
        vec = SimulatedInternet(config)
        targets = [
            region.address_of(rng.getrandbits(12))
            for region in vec.iter_regions()
            for _ in range(3)
        ]
        with use_vectorized(False):
            scalar = SimulatedInternet(config)
            scalar_hits = {
                port: scalar.probe_batch(targets, port) for port in ALL_PORTS
            }
        for port in ALL_PORTS:
            assert vec.probe_batch(targets, port) == scalar_hits[port]

    def test_eviction_pressure_does_not_change_probes(self):
        """Grouped probing under a 2-AS LRU ≡ probing the pinned world.

        ``vector_table_max_ases=0`` keeps the packed tables off so the
        probe path exercises region materialisation and eviction.
        """
        config = micro_config(5, vector_table_max_ases=0)
        pinned = SimulatedInternet(config)
        pinned.regions  # pin everything up front
        rng = random.Random(5)
        targets = [
            region.address_of(rng.getrandbits(12))
            for region in pinned.regions
            for _ in range(3)
        ]
        # Fresh world with a tiny resident budget, probed in two passes
        # and two orders: evictions and re-derivations must be invisible.
        squeezed = SimulatedInternet(config)
        squeezed.topology._max_resident = 2
        shuffled = targets[:]
        rng.shuffle(shuffled)
        for port in (Port.ICMP, Port.TCP443):
            want = pinned.probe_batch(targets, port)
            assert squeezed.probe_batch(shuffled, port) == want
            assert squeezed.probe_batch(targets, port) == want
        assert squeezed.topology.evicted_ases > 0


class TestStreamingConsumers:
    def test_summary_does_not_pin(self):
        internet = SimulatedInternet(micro_config())
        summary = internet.summary()
        assert not internet.topology.pinned
        assert summary == internet.describe()
        assert summary["regions"] > 0
        assert summary["ases"] == internet.config.num_ases + 1

    def test_summary_matches_pinned_counts(self):
        internet = SimulatedInternet(micro_config(11))
        summary = internet.summary()
        regions = internet.regions  # now pin and recount eagerly
        assert summary["regions"] == len(regions)
        assert summary["aliased_regions"] == sum(1 for r in regions if r.aliased)
        assert summary["firewalled_regions"] == sum(1 for r in regions if r.firewalled)
        assert summary["retired_regions"] == sum(1 for r in regions if r.retired)
        assert summary["pattern_active_addresses"] == sum(
            r.density for r in regions if not r.aliased
        )


class TestMemoryBudget:
    """Loud regression gate against reintroducing an eager walk."""

    @pytest.mark.membudget
    def test_internet_scale_stays_within_budget(self):
        import tracemalloc

        config = InternetConfig.internet()
        assert config.num_ases == 1_000_000
        tracemalloc.start()
        try:
            topology = LazyTopology(config)
            internet = SimulatedInternet(config)
            rng = random.Random(2024)
            # Touch a sparse sample spread across the whole rank space,
            # resolving each through the public net64 index.
            for rank in rng.sample(range(config.num_ases), 2_000):
                net64 = slash32_for_rank(config, rank) >> 64
                topology.region_for_net64(net64)
                assert internet.asn_of(net64 << 64) == asn_for_rank(config, rank)
            # And a slice of the mega run.
            mega_top32 = 0x2A01_0E00
            for index in range(0, config.mega_isp_regions, 1_000):
                net64 = (mega_top32 << 32) | ((index // 0x100) << 16) | (index % 0x100)
                assert topology.region_for_net64(net64) is not None
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        stats = topology.lazy_stats()
        assert stats["resident_ases"] <= config.max_resident_ases
        assert stats["materialized_ases"] >= stats["resident_ases"]
        assert stats["evicted_ases"] == stats["materialized_ases"] - stats["resident_ases"]
        budget_bytes = config.memory_budget_mb * 1024 * 1024
        assert peak < budget_bytes, (
            f"peak heap {peak / 1e6:.1f}MB exceeds the "
            f"{config.memory_budget_mb}MB budget — did an eager walk sneak in?"
        )

    @pytest.mark.membudget
    def test_internet_scale_probe_path_stays_lazy(self):
        config = InternetConfig.internet()
        internet = SimulatedInternet(config)
        assert not internet.vector_tables_allowed
        with pytest.raises(RuntimeError, match="probe tables disabled"):
            internet.probe_tables()
        rng = random.Random(7)
        targets = []
        for rank in rng.sample(range(config.num_ases), 64):
            net64 = slash32_for_rank(config, rank) >> 64
            targets.extend((net64 << 64) | rng.getrandbits(16) for _ in range(4))
        hits = internet.probe_batch(targets, Port.ICMP)
        assert hits <= set(targets)
        assert not internet.topology.pinned
        assert internet.lazy_stats()["resident_ases"] <= config.max_resident_ases
