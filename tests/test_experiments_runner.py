"""Tests for repro.experiments.runner and harness."""

import pytest

from repro.experiments import Study, run_generation
from repro.internet import Port


class TestRunGeneration:
    def test_basic_run(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet, "6tree", dataset, Port.ICMP, budget=800, round_size=200
        )
        assert result.tga_name == "6tree"
        assert result.dataset_name == dataset.name
        assert 0 < result.generated <= 800
        assert result.metrics.hits == len(result.clean_hits)
        assert result.metrics.ases == len(result.active_ases)
        assert result.rounds >= 1

    def test_hits_disjoint_from_seeds(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet, "6gen", dataset, Port.ICMP, budget=600, round_size=200
        )
        assert not set(result.clean_hits) & set(dataset.addresses)

    def test_hits_actually_respond(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet, "6tree", dataset, Port.TCP80, budget=600, round_size=200
        )
        for address in list(result.clean_hits)[:50]:
            assert internet.probe(address, Port.TCP80)

    def test_clean_hits_not_aliased(self, internet, study):
        dataset = study.constructions.full
        result = run_generation(
            internet, "6hit", dataset, Port.ICMP, budget=600, round_size=200
        )
        # Clean hits never fall inside *published* alias prefixes.
        from repro.dealias import OfflineDealiaser

        offline = OfflineDealiaser.from_internet(internet)
        assert not any(offline.is_aliased(a) for a in result.clean_hits)

    def test_aliased_and_clean_disjoint(self, internet, study):
        dataset = study.constructions.full
        result = run_generation(
            internet, "det", dataset, Port.ICMP, budget=600, round_size=200
        )
        assert not set(result.clean_hits) & set(result.aliased_hits)

    def test_no_dealias_outputs(self, internet, study):
        dataset = study.constructions.full
        result = run_generation(
            internet,
            "6tree",
            dataset,
            Port.ICMP,
            budget=400,
            round_size=200,
            dealias_outputs=False,
        )
        assert result.metrics.aliases == 0

    def test_mega_isp_filtered_from_icmp(self, internet, study):
        dataset = study.constructions.all_active
        result = run_generation(
            internet, "6tree", dataset, Port.ICMP, budget=800, round_size=200
        )
        mega = internet.mega_isp_asn
        assert all(internet.asn_of(a) != mega for a in result.clean_hits)

    def test_invalid_budget(self, internet, study):
        with pytest.raises(ValueError):
            run_generation(
                internet, "6tree", study.constructions.all_active, Port.ICMP, budget=0
            )

    def test_deterministic(self, internet, study):
        dataset = study.constructions.all_active
        a = run_generation(internet, "6graph", dataset, Port.ICMP, budget=400)
        b = run_generation(internet, "6graph", dataset, Port.ICMP, budget=400)
        assert a.clean_hits == b.clean_hits
        assert a.metrics == b.metrics

    def test_as_dict(self, internet, study):
        result = run_generation(
            internet, "6tree", study.constructions.all_active, Port.ICMP, budget=400
        )
        info = result.as_dict()
        assert info["tga"] == "6tree"
        assert info["hits"] == result.metrics.hits
        assert 0.0 <= info["hitrate"] <= 1.0


class TestStudy:
    def test_run_cached(self, study):
        dataset = study.constructions.all_active
        first = study.run("6tree", dataset, Port.ICMP)
        cached_count = study.cached_runs
        second = study.run("6tree", dataset, Port.ICMP)
        assert first is second
        assert study.cached_runs == cached_count

    def test_budget_key_in_cache(self, study):
        dataset = study.constructions.all_active
        small = study.run("6gen", dataset, Port.ICMP, budget=300)
        large = study.run("6gen", dataset, Port.ICMP, budget=600)
        assert small is not large
        assert small.budget == 300 and large.budget == 600

    def test_cache_identity_per_key(self, study):
        # Same (tga, dataset, port, budget) key -> the identical object,
        # whether reached via explicit budget or the study default.
        dataset = study.constructions.all_active
        explicit = study.run("6hit", dataset, Port.TCP80, budget=study.budget)
        defaulted = study.run("6hit", dataset, Port.TCP80)
        assert explicit is defaulted

    def test_cached_runs_counts(self, study):
        fresh = Study(internet=study.internet, budget=400, round_size=200)
        dataset = fresh.constructions.all_active
        assert fresh.cached_runs == 0
        fresh.run("6tree", dataset, Port.ICMP)
        assert fresh.cached_runs == 1
        fresh.run("6tree", dataset, Port.ICMP)  # cache hit: no growth
        assert fresh.cached_runs == 1
        fresh.run("6tree", dataset, Port.TCP80)  # new port: new cell
        assert fresh.cached_runs == 2
        fresh.run("6tree", dataset, Port.ICMP, budget=200)  # new budget
        assert fresh.cached_runs == 3

    def test_run_matrix(self, study):
        datasets = [study.constructions.all_active]
        results = study.run_matrix(
            datasets, ports=(Port.ICMP,), tga_names=("6tree", "6gen"), budget=300
        )
        assert len(results) == 2
        assert ("6tree", "all-active", Port.ICMP) in results

    def test_config_and_internet_exclusive(self, internet):
        from repro.internet import InternetConfig

        with pytest.raises(ValueError):
            Study(config=InternetConfig.tiny(), internet=internet)

    def test_new_scanner_fresh(self, study):
        a, b = study.new_scanner(), study.new_scanner()
        assert a is not b
        assert a.internet is b.internet


class TestStudyEthicsControls:
    def test_blocklist_honoured_everywhere(self, internet):
        from repro.addr import Prefix
        from repro.experiments import Study
        from repro.internet import Port
        from repro.scanner import Blocklist

        # Block one region that would otherwise be discovered.
        region = next(
            r for r in internet.regions
            if not r.aliased and not r.firewalled and not r.retired
            and r.density > 20
        )
        blocklist = Blocklist([region.prefix])
        study = Study(
            internet=internet, budget=600, round_size=200, blocklist=blocklist
        )
        run = study.run("6tree", study.constructions.all_active, Port.ICMP)
        assert not any(region.contains(a) for a in run.clean_hits)

    def test_rate_setting_propagates(self, internet):
        from repro.experiments import Study

        study = Study(internet=internet, packets_per_second=1234.0)
        assert study.new_scanner().rate_limiter.packets_per_second == 1234.0
