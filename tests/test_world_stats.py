"""Tests for repro.internet.stats and experiment sanity bounds."""

from repro.internet import (
    ALL_PORTS,
    Port,
    RegionRole,
    compute_world_stats,
    discoverable_upper_bound,
)


class TestWorldStats:
    def test_org_counts_sum_to_as_count(self, internet):
        stats = compute_world_stats(internet)
        assert sum(stats.ases_by_org.values()) == len(internet.registry)

    def test_role_counts_sum_to_region_count(self, internet):
        stats = compute_world_stats(internet)
        assert sum(stats.regions_by_role.values()) == len(internet.regions)

    def test_responsive_matches_model(self, internet):
        stats = compute_world_stats(internet)
        for port in ALL_PORTS:
            assert stats.responsive_by_port[port] == internet.count_responsive(port)

    def test_structural_counters(self, internet):
        stats = compute_world_stats(internet)
        assert stats.aliased_regions == sum(1 for r in internet.regions if r.aliased)
        assert stats.renumbered_regions > 0
        assert stats.pattern_active_total > 0

    def test_rows_flatten(self, internet):
        rows = compute_world_stats(internet).as_rows()
        categories = {row["category"] for row in rows}
        assert categories == {"org", "role", "responsive", "structural"}
        assert all(isinstance(row["value"], int) for row in rows)

    def test_gateway_role_counted(self, internet):
        stats = compute_world_stats(internet)
        assert stats.regions_by_role.get(RegionRole.GATEWAY, 0) > 0


class TestDiscoverableUpperBound:
    def test_bound_matches_count_responsive_modulo_mega(self, internet):
        bound = discoverable_upper_bound(internet, Port.ICMP, exclude_mega=False)
        assert bound == internet.count_responsive(Port.ICMP)

    def test_mega_exclusion_shrinks_icmp_bound(self, internet):
        with_mega = discoverable_upper_bound(internet, Port.ICMP, exclude_mega=False)
        without = discoverable_upper_bound(internet, Port.ICMP, exclude_mega=True)
        assert without < with_mega

    def test_mega_exclusion_noop_on_tcp(self, internet):
        a = discoverable_upper_bound(internet, Port.TCP80, exclude_mega=True)
        b = discoverable_upper_bound(internet, Port.TCP80, exclude_mega=False)
        # Mega answers almost nothing on TCP; the bound may differ by the
        # handful of mega TCP responders but not materially.
        assert abs(a - b) <= 10

    def test_no_run_exceeds_the_bound(self, study):
        """Experiment sanity: measured hits never exceed ground truth."""
        bound = discoverable_upper_bound(study.internet, Port.ICMP)
        result = study.run("6tree", study.constructions.all_active, Port.ICMP)
        assert result.metrics.hits <= bound
