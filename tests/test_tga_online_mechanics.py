"""Focused tests of the online generators' internal mechanics."""

from repro.addr import parse_address
from repro.tga.det import DET
from repro.tga.sixhit import SixHit
from repro.tga.sixsense import SixSense


def A(text: str) -> int:
    return parse_address(text)


def seeds():
    out = [A(f"2001:db8:0:{s}::{i:x}") for s in (1, 2) for i in range(1, 60)]
    out += [A(f"2400:cb00:0:{s}::{i:x}") for s in (1, 2) for i in range(1, 60)]
    return out


class TestDETMechanics:
    def test_rebuild_folds_in_actives(self):
        det = DET(rebuild_every=1, max_tracked_actives=1000)
        det.prepare(seeds())
        batch = det.propose(100)
        # Everything "responds": the rebuild must absorb them.
        det.observe({address: True for address in batch})
        assert det.discovered_actives == len(batch)
        # After the rebuild, previously discovered actives are seeds of
        # the new tree and are never proposed again.
        later = det.propose(200)
        assert not set(later) & set(batch)

    def test_tracked_actives_capped(self):
        det = DET(rebuild_every=100, max_tracked_actives=10)
        det.prepare(seeds())
        batch = det.propose(100)
        det.observe({address: True for address in batch})
        assert det.discovered_actives <= 10

    def test_group_stats_survive_rebuild(self):
        det = DET(rebuild_every=1)
        det.prepare(seeds())
        batch = det.propose(80)
        det.observe({address: True for address in batch})
        total_probes = sum(group.probes for group in det._groups)
        assert total_probes >= len([a for a in batch])  # stats preserved


class TestSixHitMechanics:
    def test_q_values_move_toward_reward(self):
        tga = SixHit(learning_rate=0.5, rebuild_every=1000)
        tga.prepare(seeds())
        batch = tga.propose(100)
        tga.observe({address: False for address in batch})
        # All-miss feedback drags touched regions' Q below the optimistic 1.0.
        assert min(tga._q) < 1.0

    def test_epsilon_floor_keeps_everyone_alive(self):
        tga = SixHit(epsilon=0.2, rebuild_every=1000)
        tga.prepare(seeds())
        batch = tga.propose(100)
        tga.observe({address: False for address in batch})
        assert all(weight > 0 for weight in tga._pool.weights)


class TestSixSenseMechanics:
    def test_exploration_slice_touches_cold_sections(self):
        tga = SixSense(exploration_fraction=0.5)
        tga.prepare(seeds())
        batch = tga.propose(200)
        sections_touched = {address >> 96 for address in batch}
        assert len(sections_touched) >= 2  # both /32s get budget

    def test_suppressed_prefix_not_proposed_again(self):
        tga = SixSense(alias_suppression_threshold=5)
        tga.prepare(seeds())
        target_net96 = A("2001:db8:0:1::") >> 32
        for _ in range(10):
            batch = tga.propose(150)
            if not batch:
                break
            tga.observe({a: ((a >> 32) == target_net96) for a in batch})
            if target_net96 in tga._suppressed_net96:
                break
        assert target_net96 in tga._suppressed_net96
        after = tga.propose(300)
        assert not any((a >> 32) == target_net96 for a in after)

    def test_reward_smoothing(self):
        tga = SixSense(reward_smoothing=0.5)
        tga.prepare(seeds())
        batch = tga.propose(100)
        tga.observe({address: False for address in batch})
        # All-miss feedback lowers some section's reward below optimistic 0.5.
        assert min(section.reward for section in tga._sections) < 0.5
