"""Tests for repro.datasets.io (seed file I/O)."""

import gzip

import pytest

from repro.addr import Prefix, parse_address
from repro.datasets import (
    SourceKind,
    load_addresses,
    load_prefix_list,
    load_seed_dataset,
    save_addresses,
    save_prefix_list,
)


class TestLoadAddresses:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "seeds.txt"
        addresses = {parse_address("2001:db8::1"), parse_address("2400::1")}
        assert save_addresses(path, addresses) == 2
        assert load_addresses(path) == addresses

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "seeds.txt"
        path.write_text("# hitlist\n\n2001:db8::1  # web server\n\n")
        assert load_addresses(path) == {parse_address("2001:db8::1")}

    def test_gzip_transparency(self, tmp_path):
        path = tmp_path / "seeds.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("2001:db8::1\n2001:db8::2\n")
        assert len(load_addresses(path)) == 2

    def test_save_gzip(self, tmp_path):
        path = tmp_path / "out.txt.gz"
        save_addresses(path, [1, 2, 3])
        assert load_addresses(path) == {1, 2, 3}

    def test_strict_raises_on_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2001:db8::1\nnot-an-address\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_addresses(path)

    def test_lenient_skips_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2001:db8::1\nnot-an-address\n2001:db8::2\n")
        assert len(load_addresses(path, strict=False)) == 2

    def test_save_deduplicates_and_sorts(self, tmp_path):
        path = tmp_path / "out.txt"
        assert save_addresses(path, [5, 1, 5, 3]) == 3
        lines = path.read_text().splitlines()
        assert lines == ["::1", "::3", "::5"]


class TestSeedDataset:
    def test_load_as_dataset(self, tmp_path):
        path = tmp_path / "myhitlist.txt"
        path.write_text("2001:db8::1\n")
        dataset = load_seed_dataset(path)
        assert dataset.name == "myhitlist"
        assert dataset.kind is SourceKind.HITLIST
        assert parse_address("2001:db8::1") in dataset

    def test_custom_name_and_kind(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("::1\n")
        dataset = load_seed_dataset(path, name="custom", kind=SourceKind.ROUTER)
        assert dataset.name == "custom"
        assert dataset.kind is SourceKind.ROUTER

    def test_dataset_usable_by_tga(self, tmp_path):
        from repro.tga import create_tga

        path = tmp_path / "seeds.txt"
        save_addresses(path, [parse_address(f"2001:db8::{i}") for i in range(1, 20)])
        dataset = load_seed_dataset(path)
        tga = create_tga("6tree")
        tga.prepare(sorted(dataset.addresses))
        assert tga.propose(10)


class TestPrefixList:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "aliases.txt"
        prefixes = [Prefix.parse("2001:db8::/64"), Prefix.parse("2600:9000::/48")]
        assert save_prefix_list(path, prefixes) == 2
        assert load_prefix_list(path) == sorted(prefixes)

    def test_comments(self, tmp_path):
        path = tmp_path / "aliases.txt"
        path.write_text("# published alias list\n2001:db8::/64\n")
        assert load_prefix_list(path) == [Prefix.parse("2001:db8::/64")]

    def test_usable_as_offline_dealiaser(self, tmp_path):
        from repro.dealias import OfflineDealiaser

        path = tmp_path / "aliases.txt"
        save_prefix_list(path, [Prefix.parse("2001:db8::/64")])
        dealiaser = OfflineDealiaser(load_prefix_list(path))
        assert dealiaser.is_aliased(parse_address("2001:db8::42"))
