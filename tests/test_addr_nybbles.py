"""Tests for repro.addr.nybbles."""

import pytest

from repro.addr import (
    common_prefix_len,
    differing_positions,
    from_nybbles,
    get_nybble,
    nybble_counts,
    parse_address,
    set_nybble,
    to_nybbles,
)


class TestGetNybble:
    def test_most_significant(self):
        assert get_nybble(parse_address("2001:db8::"), 0) == 0x2

    def test_least_significant(self):
        assert get_nybble(parse_address("::f"), 31) == 0xF

    def test_middle(self):
        assert get_nybble(parse_address("2001:db8::"), 3) == 0x1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            get_nybble(0, 32)
        with pytest.raises(IndexError):
            get_nybble(0, -1)


class TestSetNybble:
    def test_set_and_get(self):
        value = set_nybble(0, 5, 0xA)
        assert get_nybble(value, 5) == 0xA

    def test_overwrite(self):
        address = parse_address("2001:db8::1")
        changed = set_nybble(address, 31, 0x2)
        assert changed == parse_address("2001:db8::2")

    def test_other_nybbles_untouched(self):
        address = parse_address("2001:db8::1234")
        changed = set_nybble(address, 0, 0x3)
        for index in range(1, 32):
            assert get_nybble(changed, index) == get_nybble(address, index)

    def test_bad_value(self):
        with pytest.raises(ValueError):
            set_nybble(0, 0, 16)

    def test_bad_index(self):
        with pytest.raises(IndexError):
            set_nybble(0, 99, 1)


class TestRoundtrip:
    def test_to_from_nybbles(self):
        address = parse_address("2a03:2880:f101:83:face:b00c::25de")
        assert from_nybbles(to_nybbles(address)) == address

    def test_to_nybbles_length(self):
        assert len(to_nybbles(0)) == 32

    def test_from_nybbles_wrong_length(self):
        with pytest.raises(ValueError):
            from_nybbles([0] * 31)

    def test_from_nybbles_bad_value(self):
        with pytest.raises(ValueError):
            from_nybbles([0] * 31 + [16])


class TestCommonPrefixLen:
    def test_identical(self):
        address = parse_address("2001:db8::1")
        assert common_prefix_len(address, address) == 32

    def test_differ_in_first(self):
        assert common_prefix_len(0, 1 << 127) == 0

    def test_differ_in_last(self):
        assert common_prefix_len(0, 1) == 31

    def test_share_half(self):
        a = parse_address("2001:db8:1111::")
        b = parse_address("2001:db8:2222::")
        assert common_prefix_len(a, b) == 8


class TestDifferingPositions:
    def test_empty_input(self):
        assert differing_positions([]) == []

    def test_single_input(self):
        assert differing_positions([42]) == []

    def test_identical_addresses(self):
        assert differing_positions([7, 7, 7]) == []

    def test_last_nybble_varies(self):
        addresses = [parse_address("2001:db8::1"), parse_address("2001:db8::5")]
        assert differing_positions(addresses) == [31]

    def test_multiple_positions(self):
        addresses = [
            parse_address("2001:db8:0:1::1"),
            parse_address("2001:db8:0:2::9"),
        ]
        assert differing_positions(addresses) == [15, 31]


class TestNybbleCounts:
    def test_uniform_value(self):
        counts = nybble_counts([0xF, 0xF, 0xF], 31)
        assert counts[0xF] == 3
        assert sum(counts) == 3

    def test_distribution(self):
        addresses = [0x1, 0x2, 0x2, 0x3]
        counts = nybble_counts(addresses, 31)
        assert counts[1] == 1
        assert counts[2] == 2
        assert counts[3] == 1

    def test_bad_index(self):
        with pytest.raises(IndexError):
            nybble_counts([1], 40)
