"""Tests for repro.asdb."""

import pytest

from repro.addr import Prefix, parse_address
from repro.asdb import ASInfo, ASRegistry, OrgType


def make_registry() -> ASRegistry:
    registry = ASRegistry()
    registry.register(
        ASInfo(
            asn=64500,
            name="Example Cloud",
            org_type=OrgType.CLOUD,
            country="US",
            prefixes=(Prefix.parse("2001:db8::/32"),),
        )
    )
    registry.register(
        ASInfo(
            asn=64501,
            name="Example ISP",
            org_type=OrgType.ISP,
            country="DE",
            prefixes=(Prefix.parse("2400:1000::/32"), Prefix.parse("2400:2000::/32")),
        )
    )
    return registry


class TestOrgType:
    def test_eyeball(self):
        assert OrgType.ISP.is_eyeball
        assert OrgType.MOBILE.is_eyeball
        assert not OrgType.CLOUD.is_eyeball

    def test_datacenter(self):
        assert OrgType.CLOUD.is_datacenter
        assert OrgType.CDN.is_datacenter
        assert OrgType.SECURITY.is_datacenter
        assert not OrgType.GOVERNMENT.is_datacenter

    def test_string_value(self):
        assert OrgType("isp") is OrgType.ISP


class TestRegistration:
    def test_register_and_len(self):
        registry = make_registry()
        assert len(registry) == 2
        assert 64500 in registry
        assert 99999 not in registry

    def test_duplicate_rejected(self):
        registry = make_registry()
        with pytest.raises(ValueError):
            registry.register(
                ASInfo(asn=64500, name="dup", org_type=OrgType.ISP, country="US")
            )

    def test_announce_extra_prefix(self):
        registry = make_registry()
        registry.announce(Prefix.parse("2600::/32"), 64500)
        assert registry.asn_of(parse_address("2600::1")) == 64500

    def test_announce_unknown_as(self):
        registry = make_registry()
        with pytest.raises(KeyError):
            registry.announce(Prefix.parse("2600::/32"), 12345)


class TestLookups:
    def test_asn_of(self):
        registry = make_registry()
        assert registry.asn_of(parse_address("2001:db8::1")) == 64500
        assert registry.asn_of(parse_address("2400:2000::9")) == 64501
        assert registry.asn_of(parse_address("3000::1")) is None

    def test_info(self):
        registry = make_registry()
        info = registry.info(64501)
        assert info.name == "Example ISP"
        assert info.org_type is OrgType.ISP
        with pytest.raises(KeyError):
            registry.info(1)

    def test_info_str(self):
        assert "AS64500" in str(make_registry().info(64500))

    def test_all_asns_sorted(self):
        assert make_registry().all_asns() == [64500, 64501]


class TestAggregation:
    def test_ases_of(self):
        registry = make_registry()
        addresses = [
            parse_address("2001:db8::1"),
            parse_address("2001:db8::2"),
            parse_address("2400:1000::1"),
            parse_address("3000::1"),  # unrouted
        ]
        assert registry.ases_of(addresses) == {64500, 64501}

    def test_count_by_as(self):
        registry = make_registry()
        addresses = [parse_address("2001:db8::1"), parse_address("2001:db8::2")]
        counts = registry.count_by_as(addresses)
        assert counts[64500] == 2
        assert 64501 not in counts

    def test_group_by_as(self):
        registry = make_registry()
        a = parse_address("2001:db8::1")
        b = parse_address("2400:1000::1")
        groups = registry.group_by_as([a, b, parse_address("3000::1")])
        assert groups == {64500: [a], 64501: [b]}

    def test_announced_prefixes(self):
        registry = make_registry()
        announced = registry.announced_prefixes()
        assert (Prefix.parse("2001:db8::/32"), 64500) in announced
        assert len(announced) == 3


class TestOnGeneratedWorld:
    def test_every_region_asn_registered(self, internet):
        for region in internet.regions[:200]:
            assert region.asn in internet.registry

    def test_region_address_routes_to_region_asn(self, internet):
        for region in internet.regions[:100]:
            address = region.address_of(1)
            assert internet.registry.asn_of(address) == region.asn
