"""Tests for repro.datasets.sampling."""

from repro.asdb import OrgType
from repro.datasets import SourceSpec, collect_source
from repro.datasets.base import SourceKind
from repro.internet import RegionRole


def make_spec(**overrides) -> SourceSpec:
    defaults = dict(
        name="synthetic",
        kind=SourceKind.DOMAIN,
        roles=(RegionRole.SERVER, RegionRole.DNS),
        org_types=(OrgType.CLOUD, OrgType.HOSTING, OrgType.CDN, OrgType.SECURITY),
        as_coverage=1.0,
        region_coverage=1.0,
        address_fraction=1.0,
        salt=0x1234,
    )
    defaults.update(overrides)
    return SourceSpec(**defaults)


class TestCollectSource:
    def test_full_coverage_collects_all_server_observables(self, internet):
        dataset = collect_source(internet, make_spec())
        # Every non-aliased datacenter server observable must be present.
        expected = set()
        for region in internet.regions:
            if region.aliased or region.role not in (
                RegionRole.SERVER,
                RegionRole.DNS,
            ):
                continue
            org = internet.registry.info(region.asn).org_type
            if org.is_datacenter:
                expected.update(region.observable_addresses())
        assert expected <= set(dataset.addresses)

    def test_zero_alias_inclusion_excludes_aliases(self, internet):
        dataset = collect_source(internet, make_spec(alias_inclusion=0.0))
        assert not any(internet.is_aliased_truth(a) for a in dataset.addresses)

    def test_full_alias_inclusion_includes_aliases(self, internet):
        dataset = collect_source(internet, make_spec(alias_inclusion=1.0))
        assert any(internet.is_aliased_truth(a) for a in dataset.addresses)

    def test_address_fraction_scales_size(self, internet):
        full = collect_source(internet, make_spec())
        half = collect_source(internet, make_spec(address_fraction=0.5))
        assert len(half) < len(full)
        assert len(half) > len(full) * 0.3

    def test_as_coverage_scales_ases(self, internet):
        full = collect_source(internet, make_spec())
        sparse = collect_source(internet, make_spec(as_coverage=0.3))
        full_ases = full.ases(internet.registry)
        sparse_ases = sparse.ases(internet.registry)
        assert len(sparse_ases) < len(full_ases)
        assert sparse_ases <= full_ases

    def test_deterministic(self, internet):
        spec = make_spec(address_fraction=0.4)
        a = collect_source(internet, spec)
        b = collect_source(internet, spec)
        assert a.addresses == b.addresses

    def test_salt_changes_sample(self, internet):
        a = collect_source(internet, make_spec(address_fraction=0.4, salt=1))
        b = collect_source(internet, make_spec(address_fraction=0.4, salt=2))
        assert a.addresses != b.addresses

    def test_extra_roles_sampled_thinly(self, internet):
        with_extra = collect_source(
            internet,
            make_spec(
                extra_roles=(RegionRole.ROUTER,),
                extra_role_fraction=1.0,
            ),
        )
        without = collect_source(internet, make_spec())
        assert len(with_extra) > len(without)

    def test_role_filter_respected(self, internet):
        dataset = collect_source(
            internet, make_spec(roles=(RegionRole.ROUTER,), org_types=tuple(OrgType))
        )
        for address in list(dataset.addresses)[:200]:
            region = internet.region_of(address)
            assert region.role is RegionRole.ROUTER

    def test_metadata_counters(self, internet):
        dataset = collect_source(internet, make_spec(alias_inclusion=1.0))
        assert dataset.metadata["regions_sampled"] > 0
        assert dataset.metadata["alias_regions_sampled"] > 0

    def test_stale_boost_prefers_churny_regions(self, internet):
        """An archival source (stale_boost > 1) picks up more retired or
        high-churn regions than a fresh one at the same coverage."""
        fresh = collect_source(internet, make_spec(region_coverage=0.25, salt=7))
        stale = collect_source(
            internet, make_spec(region_coverage=0.25, stale_boost=4.0, salt=7)
        )

        def stale_fraction(dataset):
            count = 0
            for address in dataset.addresses:
                region = internet.region_of(address)
                if region.retired or region.churn_rate >= 0.15:
                    count += 1
            return count / len(dataset)

        assert stale_fraction(stale) > stale_fraction(fresh)
