"""Tests for repro.addr.address."""

import pytest

from repro.addr import (
    ADDRESS_BITS,
    ADDRESS_NYBBLES,
    MAX_ADDRESS,
    format_address,
    format_address_full,
    interface_identifier,
    is_valid_address,
    network_part,
    parse_address,
)


class TestConstants:
    def test_address_bits(self):
        assert ADDRESS_BITS == 128

    def test_address_nybbles(self):
        assert ADDRESS_NYBBLES == 32

    def test_max_address(self):
        assert MAX_ADDRESS == 2**128 - 1


class TestParse:
    def test_loopback(self):
        assert parse_address("::1") == 1

    def test_all_zeros(self):
        assert parse_address("::") == 0

    def test_documentation_prefix(self):
        assert parse_address("2001:db8::") == 0x20010DB8 << 96

    def test_full_form(self):
        text = "2001:0db8:0000:0000:0000:0000:0000:0001"
        assert parse_address(text) == (0x20010DB8 << 96) | 1

    def test_max(self):
        assert parse_address("ffff:" * 7 + "ffff") == MAX_ADDRESS

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_address("not-an-address")

    def test_ipv4_literal_raises(self):
        with pytest.raises(ValueError):
            parse_address("192.0.2.1")


class TestFormat:
    def test_loopback(self):
        assert format_address(1) == "::1"

    def test_roundtrip_sample(self):
        for text in ("2001:db8::1", "fe80::1", "2400:cb00:2048:1::6810:1234"):
            assert format_address(parse_address(text)) == text

    def test_full_form_expanded(self):
        assert (
            format_address_full(1)
            == "0000:0000:0000:0000:0000:0000:0000:0001"
        )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            format_address(2**128)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_address(-1)

    def test_full_out_of_range_raises(self):
        with pytest.raises(ValueError):
            format_address_full(2**129)


class TestValidity:
    def test_zero_valid(self):
        assert is_valid_address(0)

    def test_max_valid(self):
        assert is_valid_address(MAX_ADDRESS)

    def test_too_large_invalid(self):
        assert not is_valid_address(MAX_ADDRESS + 1)

    def test_negative_invalid(self):
        assert not is_valid_address(-5)

    def test_non_int_invalid(self):
        assert not is_valid_address("::1")


class TestParts:
    def test_interface_identifier(self):
        address = parse_address("2001:db8::dead:beef")
        assert interface_identifier(address) == 0xDEADBEEF

    def test_network_part(self):
        address = parse_address("2001:db8:1:2::42")
        assert network_part(address) == 0x2001_0DB8_0001_0002

    def test_parts_recombine(self):
        address = parse_address("2a00:1450:4001:80b::200e")
        assert (network_part(address) << 64) | interface_identifier(address) == address
