"""Tests for repro.scanner.stats."""

from repro.scanner import ResponseType, ScanStats


class TestScanStats:
    def test_record_counts(self):
        stats = ScanStats()
        stats.record(ResponseType.ECHO_REPLY)
        stats.record(ResponseType.ECHO_REPLY)
        stats.record(ResponseType.TIMEOUT)
        assert stats.count(ResponseType.ECHO_REPLY) == 2
        assert stats.count(ResponseType.TIMEOUT) == 1
        assert stats.probes_sent == 3

    def test_blocked_not_counted_as_sent(self):
        stats = ScanStats()
        stats.record(ResponseType.BLOCKED)
        assert stats.probes_sent == 0
        assert stats.targets_blocked == 1

    def test_hits_only_affirmative(self):
        stats = ScanStats()
        stats.record(ResponseType.SYN_ACK)
        stats.record(ResponseType.RST)
        stats.record(ResponseType.UDP_REPLY)
        stats.record(ResponseType.DEST_UNREACH)
        assert stats.hits == 2

    def test_hitrate(self):
        stats = ScanStats()
        assert stats.hitrate == 0.0
        stats.record(ResponseType.ECHO_REPLY)
        stats.record(ResponseType.TIMEOUT)
        assert stats.hitrate == 0.5

    def test_merge(self):
        a, b = ScanStats(), ScanStats()
        a.record(ResponseType.ECHO_REPLY)
        b.record(ResponseType.ECHO_REPLY)
        b.record(ResponseType.BLOCKED)
        b.virtual_duration = 1.5
        a.merge(b)
        assert a.count(ResponseType.ECHO_REPLY) == 2
        assert a.targets_blocked == 1
        assert a.virtual_duration == 1.5

    def test_as_dict(self):
        stats = ScanStats()
        stats.record(ResponseType.ECHO_REPLY)
        info = stats.as_dict()
        assert info["probes_sent"] == 1
        assert info["hits"] == 1
        assert info["response_echo_reply"] == 1


class TestBlockedAccounting:
    """BLOCKED targets never reach the wire: they are tracked separately
    from response counts, and ``probes_sent`` equals the sum of all
    recorded (non-blocked) responses."""

    def test_count_blocked_returns_targets_blocked(self):
        stats = ScanStats()
        stats.record(ResponseType.BLOCKED)
        stats.record(ResponseType.BLOCKED)
        assert stats.count(ResponseType.BLOCKED) == 2
        assert stats.targets_blocked == 2

    def test_blocked_leaves_no_responses_entry(self):
        stats = ScanStats()
        stats.record(ResponseType.BLOCKED)
        assert ResponseType.BLOCKED not in stats.responses

    def test_probes_sent_invariant(self):
        stats = ScanStats()
        mixed = [
            ResponseType.ECHO_REPLY,
            ResponseType.BLOCKED,
            ResponseType.TIMEOUT,
            ResponseType.SYN_ACK,
            ResponseType.BLOCKED,
            ResponseType.RST,
            ResponseType.DEST_UNREACH,
        ]
        for response in mixed:
            stats.record(response)
        assert stats.probes_sent == sum(stats.responses.values())
        assert stats.probes_sent == 5
        assert stats.targets_blocked == 2

    def test_invariant_survives_merge(self):
        a, b = ScanStats(), ScanStats()
        a.record(ResponseType.ECHO_REPLY)
        a.record(ResponseType.BLOCKED)
        b.record(ResponseType.TIMEOUT)
        b.record(ResponseType.BLOCKED)
        a.merge(b)
        assert a.probes_sent == sum(a.responses.values()) == 2
        assert a.targets_blocked == 2

    def test_hitrate_excludes_blocked(self):
        stats = ScanStats()
        stats.record(ResponseType.ECHO_REPLY)
        stats.record(ResponseType.BLOCKED)
        # One probe actually sent, one hit: 100%, not 50%.
        assert stats.hitrate == 1.0
