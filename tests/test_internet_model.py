"""Tests for repro.internet.model (the SimulatedInternet facade)."""

import itertools

from repro.internet import (
    COLLECTION_EPOCH,
    SCAN_EPOCH,
    InternetConfig,
    Port,
    RegionRole,
    SimulatedInternet,
)


class TestLookups:
    def test_region_of_member(self, internet):
        region = internet.regions[0]
        assert internet.region_of(region.address_of(1)) is region

    def test_region_of_unallocated(self, internet):
        assert internet.region_of(0x3FFF << 112) is None

    def test_asn_of_region_member(self, internet):
        region = internet.regions[0]
        assert internet.asn_of(region.address_of(1)) == region.asn

    def test_asn_of_in_as_but_unallocated_subnet(self, internet):
        """Addresses inside an announced /32 but outside any region still
        attribute to the AS via the registry fallback."""
        region = internet.regions[0]
        info = internet.registry.info(region.asn)
        probe = info.prefixes[0].value | 0xFFFF_FFFF_FFFF_F000
        assert internet.asn_of(probe) == region.asn

    def test_target_exists(self, internet):
        region = internet.regions[0]
        assert internet.target_exists(region.address_of(99))
        assert not internet.target_exists(0x3FFF << 112)

    def test_regions_with_role(self, internet):
        routers = internet.regions_with_role(RegionRole.ROUTER)
        assert routers
        assert all(r.role is RegionRole.ROUTER for r in routers)


class TestProbing:
    def test_responsive_member_answers(self, internet):
        for region in internet.regions:
            iids = region.responsive_iids(Port.ICMP, SCAN_EPOCH)
            if iids:
                iid = next(iter(iids))
                assert internet.probe(region.address_of(iid), Port.ICMP)
                break
        else:
            raise AssertionError("no responsive region found")

    def test_unallocated_never_answers(self, internet):
        assert not internet.probe(0x3FFF << 112, Port.ICMP)

    def test_epoch_matters(self, internet):
        retired = next(r for r in internet.regions if r.retired and not r.aliased)
        if not retired.active_iids():
            return
        iid = next(iter(retired.active_iids()))
        address = retired.address_of(iid)
        collection = internet.probe(
            address, Port.ICMP, epoch=COLLECTION_EPOCH
        )
        scan = internet.probe(address, Port.ICMP, epoch=SCAN_EPOCH)
        assert not scan
        # At collection time the address answers iff its profile draw said so.
        assert collection == (
            iid in retired.responsive_iids(Port.ICMP, COLLECTION_EPOCH)
        )


class TestAliases:
    def test_true_alias_prefixes_are_aliased_regions(self, internet):
        truth = set(internet.true_alias_prefixes)
        from_regions = {r.prefix for r in internet.regions if r.aliased}
        assert truth == from_regions

    def test_published_subset_of_truth(self, internet):
        published = set(internet.published_alias_prefixes)
        assert published < set(internet.true_alias_prefixes)
        assert published  # coverage is substantial, not empty

    def test_is_aliased_truth(self, internet):
        aliased_region = next(r for r in internet.regions if r.aliased)
        assert internet.is_aliased_truth(aliased_region.address_of(12345))
        normal_region = next(r for r in internet.regions if not r.aliased)
        assert not internet.is_aliased_truth(normal_region.address_of(1))


class TestEnumeration:
    def test_iter_responsive_matches_count(self, internet):
        listed = list(internet.iter_responsive(Port.UDP53))
        assert len(listed) == internet.count_responsive(Port.UDP53)

    def test_iter_responsive_all_respond(self, internet):
        sample = list(itertools.islice(internet.iter_responsive(Port.ICMP), 200))
        assert all(internet.probe(address, Port.ICMP) for address in sample)

    def test_responsive_ases_subset_of_registry(self, internet):
        ases = internet.responsive_ases(Port.ICMP)
        assert ases <= set(internet.registry.all_asns())
        assert len(ases) > 10

    def test_udp_fewer_than_icmp(self, internet):
        assert internet.count_responsive(Port.UDP53) < internet.count_responsive(
            Port.ICMP
        )

    def test_iter_ever_responsive_nonempty(self, internet):
        sample = list(itertools.islice(internet.iter_ever_responsive(), 50))
        assert len(sample) == 50


class TestDescribe:
    def test_describe_keys(self, internet):
        info = internet.describe()
        assert info["ases"] == internet.config.num_ases + 1
        assert info["regions"] == len(internet.regions)
        assert info["aliased_regions"] > 0
        assert info["pattern_active_addresses"] > 0

    def test_mega_isp_asn_property(self, internet):
        assert internet.mega_isp_asn == internet.config.mega_isp_asn


class TestDeterminism:
    def test_same_config_same_world(self):
        config = InternetConfig.tiny(master_seed=5)
        a = SimulatedInternet(config)
        b = SimulatedInternet(config)
        assert a.describe() == b.describe()
        assert [r.net64 for r in a.regions] == [r.net64 for r in b.regions]
        assert a.count_responsive(Port.ICMP) == b.count_responsive(Port.ICMP)
