"""End-to-end integration tests exercising the paper's headline shapes.

These run on the tiny world with small budgets, so they assert *robust*
directional properties (the same shapes EXPERIMENTS.md validates at
benchmark scale), not precise magnitudes.
"""

import pytest

from repro.dealias import DealiasMode
from repro.experiments import run_rq1a, run_rq4
from repro.internet import ALL_PORTS, Port
from repro.tga import ALL_TGA_NAMES


@pytest.fixture(scope="module")
def full_study(internet):
    from repro.experiments import Study

    return Study(internet=internet, budget=1_200, round_size=300)


class TestDealiasingShape:
    """RQ1.a: aliases in seeds poison generation; joint dealiasing fixes it."""

    @pytest.fixture(scope="class")
    def rq1a(self, full_study):
        return run_rq1a(
            full_study,
            ports=(Port.ICMP,),
            modes=(DealiasMode.NONE, DealiasMode.JOINT),
        )

    def test_joint_crushes_aliases_overall(self, rq1a):
        table = rq1a.table4(Port.ICMP)
        total_none = sum(row[DealiasMode.NONE] for row in table.values())
        total_joint = sum(row[DealiasMode.JOINT] for row in table.values())
        assert total_joint < total_none / 3

    def test_dealiasing_helps_hits_overall(self, rq1a):
        runs = rq1a.runs
        total_none = sum(
            runs[(tga, DealiasMode.NONE, Port.ICMP)].metrics.hits
            for tga in ALL_TGA_NAMES
        )
        total_joint = sum(
            runs[(tga, DealiasMode.JOINT, Port.ICMP)].metrics.hits
            for tga in ALL_TGA_NAMES
        )
        assert total_joint > total_none

    def test_6sense_least_alias_prone(self, rq1a):
        """6Sense's built-in dealiasing caps its alias discovery near the
        bottom of the table even on fully aliased seeds."""
        table = rq1a.table4(Port.ICMP)
        six_sense = table["6sense"][DealiasMode.NONE]
        worst = max(row[DealiasMode.NONE] for row in table.values())
        assert six_sense < worst


class TestGeneratorProfiles:
    """RQ4-adjacent: relative generator character on the All Active data."""

    @pytest.fixture(scope="class")
    def rq4(self, full_study):
        return run_rq4(full_study, ports=(Port.ICMP,))

    def test_every_generator_finds_something(self, rq4):
        for tga in ALL_TGA_NAMES:
            if tga == "eip":
                continue  # EIP legitimately finds ~nothing at tiny scale
            assert rq4.runs[(tga, Port.ICMP)].metrics.hits > 0, tga

    def test_eip_is_weakest(self, rq4):
        hits = {tga: rq4.runs[(tga, Port.ICMP)].metrics.hits for tga in ALL_TGA_NAMES}
        assert hits["eip"] == min(hits.values())

    def test_ensemble_beats_best_single(self, rq4):
        best = max(
            rq4.runs[(tga, Port.ICMP)].metrics.hits for tga in ALL_TGA_NAMES
        )
        assert rq4.ensemble_hits(Port.ICMP) > best

    def test_6scan_6tree_high_overlap(self, rq4):
        """6Scan shares 6Tree's partitioning; their outputs must overlap
        more than an average generator pair."""
        overlap = rq4.hit_overlap(Port.ICMP)
        pair = overlap[tuple(sorted(("6scan", "6tree")))]
        others = [
            value
            for key, value in overlap.items()
            if set(key) != {"6scan", "6tree"}
        ]
        assert pair > sum(others) / len(others)

    def test_figure6_first_contributor_dominates(self, rq4):
        steps = rq4.figure6_hits(Port.ICMP)
        assert steps[0].cumulative_fraction > 0.3


class TestFullMatrixSmoke:
    def test_all_ports_runnable(self, full_study):
        """Every port produces a valid run for a representative generator."""
        dataset = full_study.constructions.all_active
        for port in ALL_PORTS:
            result = full_study.run("6tree", dataset, port, budget=400)
            assert result.generated > 0

    def test_icmp_yields_most_hits(self, full_study):
        dataset = full_study.constructions.all_active
        hits = {
            port: full_study.run("6tree", dataset, port, budget=400).metrics.hits
            for port in ALL_PORTS
        }
        assert hits[Port.ICMP] == max(hits.values())
        assert hits[Port.UDP53] == min(hits.values())


class TestReproducibility:
    def test_identical_studies_identical_results(self, tiny_config):
        from repro.experiments import Study

        a = Study(config=tiny_config, budget=400, round_size=200)
        b = Study(config=tiny_config, budget=400, round_size=200)
        dataset_a = a.constructions.all_active
        dataset_b = b.constructions.all_active
        assert dataset_a.addresses == dataset_b.addresses
        run_a = a.run("det", dataset_a, Port.ICMP)
        run_b = b.run("det", dataset_b, Port.ICMP)
        assert run_a.clean_hits == run_b.clean_hits
        assert run_a.metrics == run_b.metrics
