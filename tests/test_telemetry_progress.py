"""Tests for repro.telemetry.progress: the live progress sink.

The two invariants: output goes only to the configured stream (stderr by
default), and attaching the sink never changes what other sinks see —
the trace byte-identity half is asserted end-to-end in test_cli.py.
"""

import io

from repro.telemetry import MemorySink, ProgressSink, Telemetry
from repro.telemetry.progress import format_eta


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_sink(min_interval=0.0):
    stream = io.StringIO()
    clock = FakeClock()
    sink = ProgressSink(stream=stream, min_interval=min_interval, clock=clock)
    return sink, stream, clock


class TestFormatEta:
    def test_minutes_seconds(self):
        assert format_eta(63) == "1:03"
        assert format_eta(0) == "0:00"

    def test_hours(self):
        assert format_eta(3723) == "1:02:03"

    def test_negative_clamps(self):
        assert format_eta(-5) == "0:00"


class TestProgressSink:
    def test_cell_events_advance_the_counter(self):
        sink, stream, clock = make_sink()
        sink.handle({"type": "grid", "cells": 4, "pending": 4})
        clock.advance(1.0)
        sink.handle({"type": "cell", "tga": "6tree", "dataset": "d", "port": "icmp", "hits": 5, "rounds": 2})
        out = stream.getvalue()
        assert "[1/4 cells]" in out
        assert "6tree:d:icmp" in out
        assert "hits=5" in out

    def test_eta_appears_once_rate_is_known(self):
        sink, stream, clock = make_sink()
        sink.handle({"type": "grid", "cells": 4, "pending": 4})
        clock.advance(2.0)
        sink.handle({"type": "round", "tga": "a", "round": 1, "generated": 10, "raw_hits": 1})
        clock.advance(2.0)
        sink.handle({"type": "cell", "tga": "a", "hits": 1, "rounds": 1})
        # 1 cell in 4s -> 3 remaining at ~4s each = 12s.
        assert "eta 0:12" in stream.getvalue()

    def test_rate_limited_rendering(self):
        sink, stream, clock = make_sink(min_interval=10.0)
        sink.handle({"type": "grid", "cells": 2, "pending": 2})
        sink.handle({"type": "round", "tga": "a", "round": 1})
        first = stream.getvalue()
        clock.advance(1.0)  # within the interval: suppressed
        sink.handle({"type": "round", "tga": "a", "round": 2})
        assert stream.getvalue() == first
        clock.advance(10.0)  # past the interval: renders
        sink.handle({"type": "round", "tga": "a", "round": 3})
        assert len(stream.getvalue()) > len(first)

    def test_final_cell_forces_a_render(self):
        sink, stream, clock = make_sink(min_interval=1000.0)
        sink.handle({"type": "grid", "cells": 1, "pending": 1})
        sink.handle({"type": "cell", "tga": "a", "hits": 1, "rounds": 1})
        assert "[1/1 cells]" in stream.getvalue()

    def test_works_without_grid_totals(self):
        sink, stream, clock = make_sink()
        sink.handle({"type": "cell", "tga": "a", "hits": 3, "rounds": 1})
        out = stream.getvalue()
        assert "[1 cells]" in out
        assert "eta" not in out

    def test_close_writes_summary_only_after_output(self):
        sink, stream, clock = make_sink()
        sink.close(Telemetry())
        assert stream.getvalue() == ""  # silent when nothing rendered
        sink.handle({"type": "cell", "tga": "a"})
        clock.advance(61)
        sink.close(Telemetry())
        assert "finished:" in stream.getvalue()
        assert "1:01" in stream.getvalue()

    def test_aborted_close_says_so(self):
        sink, stream, clock = make_sink()
        sink.handle({"type": "cell", "tga": "a"})
        sink.close(Telemetry(), aborted=True)
        assert "aborted" in stream.getvalue()

    def test_events_are_not_mutated(self):
        sink, _stream, _clock = make_sink()
        memory = MemorySink()
        tel = Telemetry(sinks=[memory, sink])
        tel.emit("grid", cells=1, pending=1)
        tel.emit("cell", tga="a", hits=2, rounds=1)
        tel.close()
        assert memory.events == [
            {"type": "grid", "cells": 1, "pending": 1, "seq": 1},
            {"type": "cell", "tga": "a", "hits": 2, "rounds": 1, "seq": 2},
        ]

    def test_ignores_unrelated_events(self):
        sink, stream, _clock = make_sink()
        sink.handle({"type": "span", "path": "grid/cell"})
        sink.handle({"type": "snapshot"})
        assert stream.getvalue() == ""
