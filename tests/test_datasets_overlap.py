"""Tests for repro.datasets.overlap (Figures 1 and 2)."""

import pytest

from repro.datasets import (
    DatasetCollection,
    SeedDataset,
    SourceKind,
    overlap_by_as,
    overlap_by_ip,
    restrict_to_responsive,
)


def make_collection():
    return DatasetCollection(
        [
            SeedDataset(name="a", kind=SourceKind.DOMAIN, addresses=frozenset({1, 2, 3, 4})),
            SeedDataset(name="b", kind=SourceKind.DOMAIN, addresses=frozenset({3, 4})),
            SeedDataset(name="c", kind=SourceKind.ROUTER, addresses=frozenset({5})),
        ]
    )


class TestOverlapByIP:
    def test_diagonal_is_100(self):
        matrix = overlap_by_ip(make_collection())
        for name in matrix.names:
            assert matrix.cells[name][name] == 100.0

    def test_pairwise_values(self):
        matrix = overlap_by_ip(make_collection())
        assert matrix.cells["a"]["b"] == pytest.approx(50.0)
        assert matrix.cells["b"]["a"] == pytest.approx(100.0)
        assert matrix.cells["a"]["c"] == 0.0

    def test_any_other_column(self):
        matrix = overlap_by_ip(make_collection())
        assert matrix.any_other["a"] == pytest.approx(50.0)
        assert matrix.any_other["b"] == pytest.approx(100.0)
        assert matrix.any_other["c"] == 0.0

    def test_sizes(self):
        matrix = overlap_by_ip(make_collection())
        assert matrix.sizes == {"a": 4, "b": 2, "c": 1}

    def test_row_accessor(self):
        matrix = overlap_by_ip(make_collection())
        assert matrix.row("a") == matrix.cells["a"]


class TestOverlapByAS(object):
    def test_on_generated_world(self, internet, collection):
        matrix = overlap_by_as(collection, internet.registry)
        assert set(matrix.names) == set(collection.names)
        # Scamper covers nearly all ASes, so other sources overlap it highly.
        assert matrix.cells["hitlist"]["scamper"] > 80.0


class TestRestrictToResponsive:
    def test_filters_and_renames(self):
        restricted = restrict_to_responsive(make_collection(), {1, 3, 5})
        assert restricted["a:active"].addresses == frozenset({1, 3})
        assert restricted["c:active"].addresses == frozenset({5})

    def test_full_study_figure2(self, internet, collection, study):
        """Figure 2's responsive-only overlap is computable end to end."""
        responsive: set[int] = set()
        for hits in study.constructions.activity.values():
            responsive |= hits
        restricted = restrict_to_responsive(collection, responsive)
        matrix = overlap_by_ip(restricted)
        assert len(matrix.names) == 12
