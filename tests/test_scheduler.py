"""Tests for repro.experiments.scheduler and the warm-start layers.

Covers the cost model and chunk planner as units, the straggler report
over ``sched`` trace events, RunStore v3 wall-time persistence (with v2
backward reads), and the system-level property that neither the
cost-aware scheduler nor a warm persistent model store can change grid
results or stripped traces.
"""

import json

import pytest

from repro.experiments import (
    CostModel,
    ExecutionPolicy,
    GridSpec,
    RunStore,
    Study,
    TGA_COST_PRIOR,
    plan_chunks,
    run_grid,
    simulate_makespan,
    study_digest,
)
from repro.internet import InternetConfig, Port
from repro.telemetry import (
    MemorySink,
    StragglerReport,
    Telemetry,
    Trace,
    straggler_report,
    strip_variant_events,
)
from repro.tga import ModelStore, use_model_cache, use_model_store, ModelCache

TGAS = ("6tree", "6gen", "eip")
PORTS = (Port.ICMP, Port.TCP80)
BUDGET = 400


def make_study() -> Study:
    return Study(config=InternetConfig.tiny(), budget=500, round_size=200)


def make_spec(study: Study) -> GridSpec:
    return GridSpec(
        datasets=(study.constructions.all_active,),
        tga_names=TGAS,
        ports=PORTS,
        budget=BUDGET,
    )


def make_cells(n_tgas=None, budget=1000):
    names = list(TGA_COST_PRIOR)[: n_tgas or len(TGA_COST_PRIOR)]
    return [(tga, "ds", Port.ICMP, budget) for tga in names]


class TestCostModel:
    def test_prior_preserves_relative_cost_order(self):
        model = CostModel.static_prior()
        assert model.estimate("eip", 1000) > model.estimate("6graph", 1000)
        assert model.estimate("6graph", 1000) > model.estimate("6scan", 1000)

    def test_unknown_tga_gets_midpack_prior(self):
        model = CostModel.static_prior()
        estimate = model.estimate("custom_plugin", 1000)
        assert model.estimate("6scan", 1000) < estimate < model.estimate("eip", 1000)

    def test_estimate_scales_with_budget(self):
        model = CostModel.static_prior()
        assert model.estimate("det", 2000) == pytest.approx(
            2 * model.estimate("det", 1000)
        )

    def test_observation_replaces_prior(self):
        model = CostModel()
        model.observe("6scan", 1000, 5.0)
        assert model.estimate("6scan", 1000) == pytest.approx(5.0)
        assert model.observations == 1

    def test_ewma_blends_observations(self):
        model = CostModel()
        model.observe("6scan", 1000, 4.0)
        model.observe("6scan", 1000, 8.0)
        # alpha=0.5: halfway between the two rates.
        assert model.estimate("6scan", 1000) == pytest.approx(6.0)

    def test_nonpositive_walls_ignored(self):
        model = CostModel()
        model.observe("6scan", 1000, 0.0)
        model.observe("6scan", 1000, -1.0)
        assert model.observations == 0

    def test_from_records(self):
        model = CostModel.from_records([("eip", 500, 2.0), ("6gen", 500, 0.5)])
        assert model.estimate("eip", 500) == pytest.approx(2.0)
        assert model.estimate("6gen", 500) == pytest.approx(0.5)

    def test_from_events_reads_sched_cell_events(self):
        events = [
            {"type": "sched", "kind": "cell", "tga": "det", "budget": 800, "wall_s": 1.6},
            {"type": "sched", "kind": "plan", "scheduler": "cost"},
            {"type": "fault", "kind": "crash"},
        ]
        model = CostModel.from_events(events)
        assert model.observations == 1
        assert model.estimate("det", 800) == pytest.approx(1.6)


class TestSimulateMakespan:
    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_single_worker_sums(self):
        assert simulate_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_greedy_dispatch(self):
        # Two workers, tasks in order: w1=3, w2=1, then 2 goes to w2.
        assert simulate_makespan([3.0, 1.0, 2.0], 2) == pytest.approx(3.0)

    def test_heavy_task_last_is_the_static_pathology(self):
        costs = [1.0] * 8 + [8.0]
        in_order = simulate_makespan(costs, 4)
        lpt = simulate_makespan(sorted(costs, reverse=True), 4)
        assert in_order > lpt

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)


class TestPlanChunks:
    def test_empty_cells(self):
        plan = plan_chunks([], CostModel.static_prior(), 4)
        assert plan.chunks == []
        assert plan.predicted_total == 0.0

    def test_every_cell_exactly_once(self):
        cells = make_cells()
        plan = plan_chunks(cells, CostModel.static_prior(), 4)
        flat = [cell for chunk in plan.chunks for cell in chunk]
        assert sorted(map(repr, flat)) == sorted(map(repr, cells))

    def test_deterministic_for_fixed_model(self):
        cells = make_cells()
        a = plan_chunks(cells, CostModel.static_prior(), 4)
        b = plan_chunks(cells, CostModel.static_prior(), 4)
        assert a.chunks == b.chunks
        assert a.costs == b.costs

    def test_most_expensive_cell_dispatched_first(self):
        plan = plan_chunks(make_cells(), CostModel.static_prior(), 2)
        assert plan.chunks[0][0][0] == "eip"

    def test_tail_is_single_cell_chunks(self):
        cells = make_cells() * 4  # 32 cells
        plan = plan_chunks(cells, CostModel.static_prior(), 2)
        assert plan.tail_chunks == 4  # min(len, 2*workers)
        for chunk in plan.chunks[-plan.tail_chunks :]:
            assert len(chunk) == 1
        assert plan.head_chunks == len(plan.chunks) - plan.tail_chunks

    def test_serial_plan_has_no_steal_tail(self):
        plan = plan_chunks(make_cells(), CostModel.static_prior(), 1)
        assert plan.tail_chunks == 0

    def test_tiny_grid_is_all_tail(self):
        plan = plan_chunks(make_cells(n_tgas=3), CostModel.static_prior(), 4)
        assert plan.head_chunks == 0
        assert plan.tail_chunks == 3

    def test_explicit_chunksize_keeps_legacy_contiguous_slices(self):
        cells = make_cells()
        plan = plan_chunks(cells, CostModel.static_prior(), 4, chunksize=3)
        assert plan.chunks == [cells[0:3], cells[3:6], cells[6:8]]
        assert plan.tail_chunks == 0

    def test_predicted_makespan_uses_plan_costs(self):
        plan = plan_chunks(make_cells(), CostModel.static_prior(), 4)
        assert plan.predicted_makespan(4) == pytest.approx(
            simulate_makespan(plan.costs, 4)
        )
        assert plan.predicted_makespan(4) <= plan.predicted_total

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            plan_chunks(make_cells(), CostModel.static_prior(), 0)


class TestPolicyValidation:
    def test_scheduler_choices(self):
        ExecutionPolicy(scheduler="cost")
        ExecutionPolicy(scheduler="static")
        with pytest.raises(ValueError, match="scheduler"):
            ExecutionPolicy(scheduler="random")


class TestStragglerReport:
    def events(self):
        return [
            {"type": "sched", "kind": "plan", "scheduler": "cost",
             "predicted_makespan_s": 2.5},
            {"type": "sched", "kind": "cell", "tga": "eip", "dataset": "ds",
             "port": "icmp", "budget": 500, "wall_s": 2.0},
            {"type": "sched", "kind": "cell", "tga": "6scan", "dataset": "ds",
             "port": "icmp", "budget": 500, "wall_s": 0.25},
            {"type": "sched", "kind": "cell", "tga": "6tree", "dataset": "ds",
             "port": "tcp80", "budget": 500, "wall_s": 0.75},
            {"type": "sched", "kind": "summary", "scheduler": "cost",
             "workers": 2, "elapsed_s": 2.0, "total_wall_s": 3.0},
        ]

    def test_ranks_cells_longest_first(self):
        report = straggler_report(Trace(path=None, events=self.events()))
        assert [row[0] for row in report.cells] == ["eip", "6tree", "6scan"]
        assert report.top(2) == report.cells[:2]

    def test_aggregates_and_bounds(self):
        report = straggler_report(Trace(path=None, events=self.events()))
        assert report.workers == 2
        assert report.scheduler == "cost"
        assert report.total_wall_s == pytest.approx(3.0)
        assert report.ideal_makespan_s == pytest.approx(1.5)
        assert report.elapsed_s == pytest.approx(2.0)
        assert report.efficiency == pytest.approx(0.75)
        assert report.predicted_makespan_s == pytest.approx(2.5)
        assert report.as_dict()["cells"] == 3

    def test_trace_without_sched_events_is_empty(self):
        report = straggler_report(
            Trace(path=None, events=[{"type": "grid", "cells": 4}])
        )
        assert report.cells == []
        assert report.efficiency == 0.0
        assert isinstance(report, StragglerReport)

    def test_executor_trace_feeds_report(self, tmp_path):
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink])
        study = make_study()
        policy = ExecutionPolicy(workers=2, telemetry=telemetry)
        run_grid(study, make_spec(study), policy=policy)
        report = straggler_report(Trace(path=None, events=list(sink.events)))
        assert len(report.cells) == len(TGAS) * len(PORTS)
        assert report.workers == 2
        assert report.total_wall_s > 0.0
        assert 0.0 < report.efficiency <= 1.0


class TestRunStoreWallSeconds:
    def run(self, study):
        return study.run("6gen", study.constructions.all_active, Port.ICMP, budget=200)

    def test_v3_roundtrips_wall_seconds(self, tmp_path):
        study = make_study()
        result = self.run(study)
        key = ("6gen", "all-active", Port.ICMP, 200)
        path = tmp_path / "ckpt.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result, wall_s=1.25)
        reread = RunStore(path)
        reread.load()
        assert reread.header["format"] == 3
        assert reread.wall_seconds == {key: 1.25}
        assert reread.get(key) == result
        model = CostModel.from_store(reread)
        assert model.estimate("6gen", 200) == pytest.approx(1.25)

    def test_wall_seconds_optional(self, tmp_path):
        study = make_study()
        result = self.run(study)
        key = ("6gen", "all-active", Port.ICMP, 200)
        with RunStore(tmp_path / "ckpt.jsonl") as store:
            store.begin()
            store.append(key, result)
        reread = RunStore(tmp_path / "ckpt.jsonl")
        reread.load()
        assert reread.wall_seconds == {}
        # A v2-era store trains nothing, but loads fine.
        assert CostModel.from_store(reread).observations == 0

    def test_v2_store_still_loads(self, tmp_path):
        """A pre-wall_s (format 2) checkpoint reads transparently."""
        study = make_study()
        result = self.run(study)
        key = ("6gen", "all-active", Port.ICMP, 200)
        path = tmp_path / "v2.jsonl"
        with RunStore(path) as store:
            store.begin(config=study_digest(study))
            store.append(key, result, wall_s=9.9)
        # Rewrite as a genuine v2 file: format 2 header, no wall_s.
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["format"] = 2
        record = json.loads(lines[1])
        record.pop("wall_s")
        path.write_text(
            json.dumps(header) + "\n" + json.dumps(record) + "\n",
            encoding="utf-8",
        )
        reread = RunStore(path)
        assert reread.load() == 1
        assert reread.header["format"] == 2
        assert reread.get(key) == result
        assert reread.wall_seconds == {}


def assert_identical_runs(a, b) -> None:
    assert a.clean_hits == b.clean_hits
    assert a.aliased_hits == b.aliased_hits
    assert a.active_ases == b.active_ases
    assert a.metrics == b.metrics
    assert a.round_history == b.round_history


class TestBitIdentity:
    """The tentpole property: scheduling strategy and store temperature
    are invisible in results and stripped traces."""

    def serial_reference(self):
        study = make_study()
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink])
        results = run_grid(
            study,
            make_spec(study),
            policy=ExecutionPolicy(telemetry=telemetry),
        )
        return results, strip_variant_events(list(sink.events))

    def test_cost_and_static_schedulers_bit_identical(self):
        reference, _reference_events = self.serial_reference()
        for scheduler in ("cost", "static"):
            study = make_study()
            sink = MemorySink()
            telemetry = Telemetry(sinks=[sink])
            results = run_grid(
                study,
                make_spec(study),
                policy=ExecutionPolicy(
                    workers=2, scheduler=scheduler, telemetry=telemetry
                ),
            )
            assert set(results.runs) == set(reference.runs)
            for key, run in reference.runs.items():
                assert_identical_runs(run, results.runs[key])
            # The cost scheduler's plan is visible in the raw trace
            # (static chunking has no plan to publish)...
            raw = list(sink.events)
            plans = [
                event
                for event in raw
                if event.get("type") == "sched" and event.get("kind") == "plan"
            ]
            if scheduler == "cost":
                assert plans and plans[0]["scheduler"] == "cost"
            else:
                assert not plans
            # ...and fully stripped from the sanctioned-variant view.
            assert not [
                event
                for event in strip_variant_events(raw)
                if event.get("type") == "sched"
            ]

    def test_warm_model_store_bit_identical(self, tmp_path):
        reference, reference_events = self.serial_reference()
        store = ModelStore(tmp_path / "store")
        for temperature in ("cold", "warm"):
            study = make_study()
            sink = MemorySink()
            telemetry = Telemetry(sinks=[sink])
            with use_model_cache(ModelCache()), use_model_store(store):
                results = run_grid(
                    study,
                    make_spec(study),
                    policy=ExecutionPolicy(telemetry=telemetry),
                )
            assert set(results.runs) == set(reference.runs)
            for key, run in reference.runs.items():
                assert_identical_runs(run, results.runs[key])
            assert strip_variant_events(list(sink.events)) == reference_events
        assert store.stats.hits > 0  # the warm pass really hit the disk

    def test_policy_model_store_setting_routes_to_disk(self, tmp_path):
        study = make_study()
        root = tmp_path / "policy-store"
        with use_model_cache(ModelCache()):
            results = run_grid(
                study,
                make_spec(study),
                policy=ExecutionPolicy(model_store=root),
            )
        assert results.complete
        assert list(root.glob("*.model"))
        # Setting is scoped to the run: nothing stays active after.
        from repro.tga import get_model_store

        assert get_model_store() is None

    def test_executor_wall_seconds_surface_in_grid_results(self):
        study = make_study()
        results = run_grid(
            study, make_spec(study), policy=ExecutionPolicy(workers=2)
        )
        assert set(results.wall_seconds) == set(results.runs)
        assert all(wall > 0.0 for wall in results.wall_seconds.values())
