"""Tests for repro.datasets.base."""

import pytest

from repro.datasets import DatasetCollection, SeedDataset, SourceKind


def make_dataset(name="test", addresses=(1, 2, 3), kind=SourceKind.DOMAIN):
    return SeedDataset(name=name, kind=kind, addresses=frozenset(addresses))


class TestSourceKind:
    def test_table_tags(self):
        assert SourceKind.DOMAIN.table_tag == "D"
        assert SourceKind.ROUTER.table_tag == "R"
        assert SourceKind.HITLIST.table_tag == "Both"


class TestSeedDataset:
    def test_len_iter_contains(self):
        dataset = make_dataset()
        assert len(dataset) == 3
        assert set(dataset) == {1, 2, 3}
        assert 2 in dataset
        assert 9 not in dataset

    def test_coerces_to_frozenset(self):
        dataset = SeedDataset(name="x", kind=SourceKind.DOMAIN, addresses={1, 2})
        assert isinstance(dataset.addresses, frozenset)

    def test_restricted_to(self):
        dataset = make_dataset()
        restricted = dataset.restricted_to({2, 3, 4}, "sub")
        assert restricted.addresses == frozenset({2, 3})
        assert restricted.name == "test:sub"
        assert restricted.kind is dataset.kind

    def test_without(self):
        dataset = make_dataset()
        trimmed = dataset.without({1}, "minus")
        assert trimmed.addresses == frozenset({2, 3})
        assert trimmed.name == "test:minus"

    def test_union_with(self):
        a = make_dataset("a", (1, 2))
        b = make_dataset("b", (2, 3))
        union = a.union_with(b, "ab")
        assert union.addresses == frozenset({1, 2, 3})
        assert union.name == "ab"

    def test_union_mixed_kind(self):
        a = make_dataset("a", (1,), SourceKind.DOMAIN)
        b = make_dataset("b", (2,), SourceKind.ROUTER)
        assert a.union_with(b, "ab").kind is SourceKind.HITLIST

    def test_overlap_fraction(self):
        a = make_dataset("a", (1, 2, 3, 4))
        b = make_dataset("b", (3, 4, 5))
        assert a.overlap_fraction(b) == pytest.approx(0.5)
        assert b.overlap_fraction(a) == pytest.approx(2 / 3)

    def test_overlap_fraction_empty(self):
        empty = make_dataset("e", ())
        assert empty.overlap_fraction(make_dataset()) == 0.0

    def test_ases(self, internet):
        region = internet.regions[0]
        dataset = make_dataset(addresses=(region.address_of(1),))
        assert dataset.ases(internet.registry) == {region.asn}


class TestDatasetCollection:
    def test_lookup(self):
        collection = DatasetCollection([make_dataset("a"), make_dataset("b", (9,))])
        assert collection["a"].name == "a"
        assert "b" in collection
        assert "c" not in collection
        assert len(collection) == 2
        assert collection.names == ["a", "b"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            DatasetCollection([make_dataset("a"), make_dataset("a")])

    def test_combined(self):
        collection = DatasetCollection(
            [make_dataset("a", (1, 2)), make_dataset("b", (2, 3))]
        )
        combined = collection.combined("all")
        assert combined.addresses == frozenset({1, 2, 3})
        assert combined.name == "all"

    def test_of_kind(self):
        collection = DatasetCollection(
            [
                make_dataset("d", (1,), SourceKind.DOMAIN),
                make_dataset("r", (2,), SourceKind.ROUTER),
            ]
        )
        assert [d.name for d in collection.of_kind(SourceKind.ROUTER)] == ["r"]

    def test_combined_of_kind(self):
        collection = DatasetCollection(
            [
                make_dataset("d1", (1, 2), SourceKind.DOMAIN),
                make_dataset("d2", (3,), SourceKind.DOMAIN),
                make_dataset("r", (9,), SourceKind.ROUTER),
            ]
        )
        domains = collection.combined_of_kind(SourceKind.DOMAIN, "all-domains")
        assert domains.addresses == frozenset({1, 2, 3})
        assert domains.kind is SourceKind.DOMAIN
