"""Tests for repro.metrics.overlap (Figure 6 machinery)."""

import pytest

from repro.metrics import cumulative_contributions, pairwise_jaccard


class TestCumulativeContributions:
    def test_greedy_ordering(self):
        sets = {
            "big": set(range(100)),
            "half_new": set(range(80, 140)),
            "subset": set(range(50)),
        }
        steps = cumulative_contributions(sets)
        assert [s.name for s in steps] == ["big", "half_new", "subset"]

    def test_new_items_accounting(self):
        sets = {"a": {1, 2, 3}, "b": {3, 4}, "c": {1}}
        steps = cumulative_contributions(sets)
        assert steps[0].new_items == 3
        assert steps[1].new_items == 1
        assert steps[2].new_items == 0

    def test_cumulative_monotone(self):
        sets = {"a": {1, 2}, "b": {2, 3}, "c": {4}}
        steps = cumulative_contributions(sets)
        values = [s.cumulative for s in steps]
        assert values == sorted(values)
        assert values[-1] == len({1, 2, 3, 4})

    def test_fractions_end_at_one(self):
        sets = {"a": {1}, "b": {2}}
        steps = cumulative_contributions(sets)
        assert steps[-1].cumulative_fraction == pytest.approx(1.0)

    def test_empty_sets(self):
        steps = cumulative_contributions({"a": set(), "b": set()})
        assert all(s.cumulative_fraction == 0.0 for s in steps)

    def test_tie_breaks_by_name(self):
        sets = {"zeta": {1}, "alpha": {2}}
        steps = cumulative_contributions(sets)
        assert steps[0].name == "alpha"

    def test_all_names_present_once(self):
        sets = {"a": {1}, "b": {1}, "c": {1}}
        steps = cumulative_contributions(sets)
        assert sorted(s.name for s in steps) == ["a", "b", "c"]


class TestPairwiseJaccard:
    def test_values(self):
        sets = {"a": {1, 2}, "b": {2, 3}, "c": set()}
        jaccard = pairwise_jaccard(sets)
        assert jaccard[("a", "b")] == pytest.approx(1 / 3)
        assert jaccard[("a", "c")] == 0.0

    def test_symmetric_keys_once(self):
        sets = {"a": {1}, "b": {1}}
        jaccard = pairwise_jaccard(sets)
        assert ("a", "b") in jaccard
        assert ("b", "a") not in jaccard

    def test_identical_sets(self):
        sets = {"a": {1, 2}, "b": {1, 2}}
        assert pairwise_jaccard(sets)[("a", "b")] == 1.0
