"""Tests for repro.telemetry.analysis: trace loading, attribution,
diffing, the regression gate and the Prometheus exporter."""

import gzip
import json
import math

import pytest

from repro.telemetry import (
    JsonlSink,
    Telemetry,
    attribute,
    diff_traces,
    load_trace,
    quantile_from_buckets,
    to_prometheus_text,
)
from repro.telemetry.analysis import Trace

from .golden_telemetry import GOLDEN_PATH


def make_recorded_trace(tmp_path, name="trace.jsonl", aborted=False):
    """A small real trace: two cells with spans, counters, a histogram."""
    path = tmp_path / name
    tel = Telemetry(sinks=[JsonlSink(path)])
    tel.count("scan.probes", 100)
    tel.count("tga.rounds", 4)
    tel.observe("scan.batch_addresses", 12)
    with tel.span("grid"):
        for tga, hits in (("6tree", 7), ("6gen", 9)):
            with tel.span("cell", tga=tga, dataset="d", port="icmp") as cell:
                with tel.span("generate") as gen:
                    gen.add_virtual(0.25)
                with tel.span("dealias") as dea:
                    dea.add_virtual(0.05)
                cell.add_virtual(0.30)
            tel.emit(
                "cell", tga=tga, dataset="d", port="icmp",
                hits=hits, probes_sent=110, rounds=2,
            )
    tel.close(aborted=aborted)
    return path


class TestLoadTrace:
    def test_jsonl_roundtrip(self, tmp_path):
        path = make_recorded_trace(tmp_path)
        trace = load_trace(path)
        assert trace.complete
        assert not trace.aborted
        assert trace.counters["scan.probes"] == 100
        assert trace.histograms["scan.batch_addresses"]["count"] == 1
        assert len(trace.events_of("cell")) == 2

    def test_gzip_trace_loads_transparently(self, tmp_path):
        plain = make_recorded_trace(tmp_path, "a.jsonl")
        packed = make_recorded_trace(tmp_path, "b.jsonl.gz")
        assert load_trace(packed).snapshot == load_trace(plain).snapshot
        assert load_trace(packed).events == load_trace(plain).events

    def test_golden_payload_format(self):
        trace = load_trace(GOLDEN_PATH)
        assert trace.complete
        assert trace.events
        assert "tga.rounds" in trace.counters

    def test_aborted_trace_is_flagged_and_reconstructable(self, tmp_path):
        path = make_recorded_trace(tmp_path, aborted=True)
        trace = load_trace(path)
        assert trace.aborted
        assert not trace.complete
        assert trace.snapshot is None
        # The span tree is rebuilt from the event stream.
        root = trace.span_tree()
        grid = root.children["grid"]
        assert grid.children["cell"].count == 2
        assert grid.children["cell"].virtual == pytest.approx(0.60)

    def test_rejects_non_trace_json(self, tmp_path):
        bogus = tmp_path / "rows.json"
        bogus.write_text(json.dumps([{"a": 1}]), encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(bogus)


class TestSpanReconstruction:
    def test_events_and_snapshot_trees_agree(self, tmp_path):
        trace = load_trace(make_recorded_trace(tmp_path))
        from_snapshot = {
            node.path: (node.count, node.virtual)
            for _d, node in trace.span_tree().walk()
        }
        from_events = {
            node.path: (node.count, node.virtual)
            for _d, node in trace.spans_from_events().walk()
        }
        assert from_snapshot == from_events


class TestAttribution:
    def test_golden_namespace_shares_sum_to_one(self):
        result = attribute(load_trace(GOLDEN_PATH))
        assert result.total_virtual > 0
        assert set(result.virtual) == {"tga", "scan", "dealias", "meta"}
        assert math.isclose(sum(result.shares().values()), 1.0, rel_tol=1e-9)
        assert math.isclose(
            sum(result.virtual.values()), result.total_virtual, rel_tol=1e-9
        )
        # The golden workload spends its virtual seconds probing.
        assert result.virtual["scan"] > 0
        assert result.virtual["dealias"] > 0

    def test_per_tga_rollup(self, tmp_path):
        result = attribute(load_trace(make_recorded_trace(tmp_path)))
        assert set(result.by_tga) == {"6tree", "6gen"}
        assert result.by_tga["6gen"]["hits"] == 9
        assert result.by_tga["6tree"]["virtual"] == pytest.approx(0.30)

    def test_hot_spans_sorted_by_virtual(self, tmp_path):
        result = attribute(load_trace(make_recorded_trace(tmp_path)), top=3)
        assert len(result.hot_spans) == 3
        virtuals = [virtual for _p, _c, virtual in result.hot_spans]
        assert virtuals == sorted(virtuals, reverse=True)

    def test_counter_namespaces(self, tmp_path):
        result = attribute(load_trace(make_recorded_trace(tmp_path)))
        assert result.counters["scan"] == 100
        assert result.counters["tga"] == 4


class TestDiff:
    def test_identical_traces_diff_empty(self, tmp_path):
        a = load_trace(make_recorded_trace(tmp_path, "a.jsonl"))
        b = load_trace(make_recorded_trace(tmp_path, "b.jsonl"))
        diff = diff_traces(a, b)
        assert diff.is_empty
        assert diff.regressions() == []

    def test_counter_inflation_is_a_regression(self):
        golden = load_trace(GOLDEN_PATH)
        inflated_snapshot = json.loads(json.dumps(golden.snapshot))
        inflated_snapshot["counters"]["scan.probes"] *= 10
        inflated = Trace(path=None, events=golden.events, snapshot=inflated_snapshot)
        diff = diff_traces(inflated, golden)
        names = {entry.name for entry in diff.regressions()}
        assert names == {"scan.probes"}
        (entry,) = diff.regressions()
        assert entry.relative == pytest.approx(9.0)
        # A generous relative tolerance still flags a 10x inflation...
        assert diff.regressions(rel_tol=0.5)
        # ...but a huge one admits it.
        assert not diff.regressions(rel_tol=10.0)

    def test_abs_tol_admits_small_drift(self, tmp_path):
        a = load_trace(make_recorded_trace(tmp_path, "a.jsonl"))
        snapshot = json.loads(json.dumps(a.snapshot))
        snapshot["counters"]["scan.probes"] += 2
        drifted = Trace(path=None, events=a.events, snapshot=snapshot)
        assert diff_traces(drifted, a).regressions(abs_tol=1.0)
        assert not diff_traces(drifted, a).regressions(abs_tol=2.0)

    def test_ignore_meta_excludes_meta_names(self, tmp_path):
        a = load_trace(make_recorded_trace(tmp_path, "a.jsonl"))
        snapshot = json.loads(json.dumps(a.snapshot))
        snapshot["counters"]["meta.cache_hits"] = 5
        drifted = Trace(path=None, events=a.events, snapshot=snapshot)
        assert diff_traces(drifted, a).regressions()
        assert not diff_traces(drifted, a).regressions(ignore_meta=True)

    def test_span_drift_detected(self, tmp_path):
        a = load_trace(make_recorded_trace(tmp_path, "a.jsonl"))
        snapshot = json.loads(json.dumps(a.snapshot))
        snapshot["spans"]["children"][0]["virtual"] += 1.0
        drifted = Trace(path=None, events=a.events, snapshot=snapshot)
        kinds = {entry.kind for entry in diff_traces(drifted, a).regressions()}
        assert kinds == {"span"}

    def test_aborted_trace_cannot_be_diffed(self, tmp_path):
        good = load_trace(make_recorded_trace(tmp_path, "a.jsonl"))
        bad = load_trace(make_recorded_trace(tmp_path, "b.jsonl", aborted=True))
        with pytest.raises(ValueError, match="aborted"):
            diff_traces(good, bad)


class TestQuantileEstimator:
    def test_interpolates_within_buckets(self):
        # 10 values <= 10, 10 values in (10, 20].
        assert quantile_from_buckets((10, 20), (10, 10), 0.5) == pytest.approx(10.0)
        assert quantile_from_buckets((10, 20), (10, 10), 0.75) == pytest.approx(15.0)

    def test_overflow_clamps_to_last_edge(self):
        assert quantile_from_buckets((10,), (0, 5), 0.99) == 10.0

    def test_empty_histogram(self):
        assert quantile_from_buckets((10,), (0, 0), 0.5) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((10,), (1, 0), 1.5)


class TestPrometheusExport:
    def test_counters_gauges_histograms_spans(self, tmp_path):
        trace = load_trace(make_recorded_trace(tmp_path))
        text = to_prometheus_text(trace.snapshot)
        assert "# TYPE repro_scan_probes_total counter" in text
        assert "repro_scan_probes_total 100" in text
        assert 'repro_scan_batch_addresses_bucket{le="+Inf"} 1' in text
        assert "repro_scan_batch_addresses_count 1" in text
        assert 'repro_span_count{path="grid/cell"} 2' in text
        assert 'repro_span_virtual_seconds{path="grid/cell/generate"} 0.5' in text

    def test_deterministic_output(self, tmp_path):
        trace = load_trace(make_recorded_trace(tmp_path))
        assert to_prometheus_text(trace.snapshot) == to_prometheus_text(trace.snapshot)

    def test_custom_prefix_sanitised(self):
        text = to_prometheus_text({"counters": {"a.b-c": 1}}, prefix="x")
        assert "x_a_b_c_total 1" in text
