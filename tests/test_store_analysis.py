"""Tests for result persistence (experiments.store) and analysis."""

import pytest

from repro.analysis import (
    compare_efficiency,
    efficiency_report,
    marginal_yields,
    summarize_convergence,
)
from repro.experiments import dump_results, load_results, run_generation
from repro.experiments.store import result_from_dict, result_to_dict
from repro.internet import Port


@pytest.fixture(scope="module")
def sample_run(internet, study):
    return run_generation(
        internet,
        "6tree",
        study.constructions.all_active,
        Port.ICMP,
        budget=1_000,
        round_size=200,
    )


class TestStore:
    def test_dict_roundtrip(self, sample_run):
        restored = result_from_dict(result_to_dict(sample_run))
        assert restored == sample_run

    def test_file_roundtrip(self, sample_run, tmp_path):
        path = tmp_path / "results.json"
        assert dump_results(path, [sample_run]) == 1
        loaded = load_results(path)
        assert loaded == [sample_run]

    def test_multiple_results(self, sample_run, tmp_path):
        path = tmp_path / "results.json"
        dump_results(path, [sample_run, sample_run])
        assert len(load_results(path)) == 2

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('{"format": 99, "results": []}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_addresses_hex_encoded(self, sample_run):
        data = result_to_dict(sample_run)
        for text in data["clean_hits"][:5]:
            int(text, 16)  # must parse as hex


class TestConvergence:
    def test_history_recorded(self, sample_run):
        assert sample_run.round_history
        generated = [g for g, _ in sample_run.round_history]
        assert generated == sorted(generated)

    def test_summary_fields(self, sample_run):
        summary = summarize_convergence(sample_run)
        assert summary.rounds == len(sample_run.round_history)
        assert summary.final_generated == sample_run.round_history[-1][0]
        assert 0 <= summary.first_round_share <= 1.0
        assert summary.budget_to_half_yield <= summary.budget_to_90pct_yield

    def test_marginal_yields_sum(self, sample_run):
        increments = marginal_yields(sample_run)
        assert sum(g for g, _ in increments) == sample_run.round_history[-1][0]
        assert sum(h for _, h in increments) == sample_run.round_history[-1][1]

    def test_empty_history(self):
        from repro.experiments.results import RunResult
        from repro.metrics import MetricSet

        empty = RunResult(
            tga_name="x",
            dataset_name="y",
            port=Port.ICMP,
            budget=10,
            generated=0,
            clean_hits=frozenset(),
            aliased_hits=frozenset(),
            active_ases=frozenset(),
            metrics=MetricSet(0, 0, 0),
        )
        summary = summarize_convergence(empty)
        assert summary.rounds == 0
        assert not summary.is_saturating


class TestEfficiency:
    def test_report_math(self, sample_run, study):
        seeds = len(study.constructions.all_active)
        report = efficiency_report(sample_run, seeds)
        assert report.hits == sample_run.metrics.hits
        assert report.hits_per_kgenerated == pytest.approx(
            1000 * sample_run.metrics.hits / sample_run.generated
        )
        assert report.dealias_overhead >= 0.0

    def test_compare_ranks_best_first(self, sample_run, study):
        seeds = len(study.constructions.all_active)
        a = efficiency_report(sample_run, seeds)
        ranking = compare_efficiency({"a": a, "zero": efficiency_report(
            sample_run, seeds
        )})
        assert ranking[0][1] >= ranking[-1][1]

    def test_as_dict(self, sample_run, study):
        info = efficiency_report(sample_run, 100).as_dict()
        assert {"seeds", "hits", "hits_per_kprobe"} <= set(info)
