"""Tests for repro.addr.rand (determinism is the whole point)."""

import pytest

from repro.addr import DeterministicStream, choice_index, coin, hash64, mix64, uniform
from repro.addr.rand import hash_address


class TestMix64:
    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_different_inputs_differ(self):
        assert mix64(1) != mix64(2)

    def test_range(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(value) < 2**64


class TestHash64:
    def test_deterministic(self):
        assert hash64(1, 2, 3) == hash64(1, 2, 3)

    def test_order_sensitive(self):
        assert hash64(1, 2) != hash64(2, 1)

    def test_arity_sensitive(self):
        assert hash64(1) != hash64(1, 0)

    def test_large_parts(self):
        big = 2**127 - 1
        assert 0 <= hash64(big) < 2**64
        assert hash64(big) != hash64(big >> 64)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hash64(-1)

    def test_hash_address_domain_separation(self):
        address = 0x2001_0DB8 << 96
        assert hash_address(1, 1, address) != hash_address(1, 2, address)
        assert hash_address(1, 1, address) != hash_address(2, 1, address)


class TestUniformCoin:
    def test_uniform_in_range(self):
        for salt in range(50):
            value = uniform(7, salt)
            assert 0.0 <= value < 1.0

    def test_coin_extremes(self):
        assert coin(1.0, 1, 2)
        assert not coin(0.0, 1, 2)
        assert coin(1.5, 1, 2)
        assert not coin(-0.5, 1, 2)

    def test_coin_rate_roughly_respected(self):
        hits = sum(coin(0.3, 99, index) for index in range(4000))
        assert 0.25 < hits / 4000 < 0.35

    def test_choice_index_range(self):
        for salt in range(100):
            assert 0 <= choice_index(7, salt) < 7

    def test_choice_index_empty_raises(self):
        with pytest.raises(ValueError):
            choice_index(0, 1)


class TestDeterministicStream:
    def test_same_seed_same_sequence(self):
        a = DeterministicStream(1, 2)
        b = DeterministicStream(1, 2)
        assert [a.next64() for _ in range(10)] == [b.next64() for _ in range(10)]

    def test_different_seed_differs(self):
        a = DeterministicStream(1)
        b = DeterministicStream(2)
        assert [a.next64() for _ in range(4)] != [b.next64() for _ in range(4)]

    def test_next_below(self):
        stream = DeterministicStream(3)
        for _ in range(200):
            assert 0 <= stream.next_below(13) < 13

    def test_next_below_invalid(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).next_below(0)

    def test_next_uniform_range(self):
        stream = DeterministicStream(5)
        for _ in range(100):
            assert 0.0 <= stream.next_uniform() < 1.0

    def test_address_bits_bounds(self):
        stream = DeterministicStream(7)
        for bits in (0, 1, 63, 64, 65, 127, 128):
            value = stream.next_address_bits(bits)
            assert 0 <= value < (1 << bits) if bits else value == 0

    def test_address_bits_invalid(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).next_address_bits(129)

    def test_shuffle_is_permutation(self):
        stream = DeterministicStream(11)
        items = list(range(50))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_shuffle_deterministic(self):
        a, b = list(range(20)), list(range(20))
        DeterministicStream(13).shuffle(a)
        DeterministicStream(13).shuffle(b)
        assert a == b

    def test_sample_distinct(self):
        stream = DeterministicStream(17)
        sample = stream.sample(list(range(100)), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_clips(self):
        stream = DeterministicStream(19)
        assert sorted(stream.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_sample_empty(self):
        assert DeterministicStream(23).sample([], 5) == []
