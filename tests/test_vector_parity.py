"""Scalar ≡ vectorized bit-identity contract.

Every batch kernel in the vectorized core must reproduce its scalar
reference element for element — not approximately, not statistically:
the same bits.  These tests sweep the kernels, the probe chain (across
firewalled / retired / aliased-with-retries / churned regions), the
IID generators, the TGA histogram paths and a full experiment grid
with the core forced on and off.
"""

from __future__ import annotations

import random

import pytest

from repro.addr import (
    ADDRESS_NYBBLES,
    HAVE_NUMPY,
    PackedAddresses,
    Prefix,
    coin,
    coin_batch,
    common_prefix_len,
    common_prefix_len_matrix,
    first_seen_values,
    hash64,
    hash64_batch,
    mix64,
    mix64_batch,
    nybble_counts,
    nybble_counts_matrix,
    to_nybble_matrix,
    to_nybbles,
    uniform,
    uniform_batch,
    use_vectorized,
    vector_enabled,
)
from repro.internet import ALL_PORTS, InternetConfig, Port, SimulatedInternet
from repro.internet.patterns import PatternKind, _build_iids
from repro.internet.ports import PortProfile
from repro.internet.regions import Region, RegionRole
from repro.scanner import Blocklist, Scanner

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

if HAVE_NUMPY:
    import numpy as np

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _rng(salt: int = 0) -> random.Random:
    return random.Random(0xC0FFEE ^ salt)


# -- randomness kernels ------------------------------------------------------


class TestRandKernels:
    def test_mix64_batch_matches_scalar(self):
        rng = _rng(1)
        values = [rng.getrandbits(64) for _ in range(4096)]
        values += [0, 1, 2**63, _MASK64]
        batch = mix64_batch(np.array(values, dtype=np.uint64))
        assert batch.tolist() == [mix64(v) for v in values]

    def test_hash64_batch_single_lane(self):
        rng = _rng(2)
        lane = [rng.getrandbits(64) for _ in range(2048)]
        batch = hash64_batch(np.array(lane, dtype=np.uint64))
        assert batch.tolist() == [hash64(v) for v in lane]

    def test_hash64_batch_mixed_scalar_and_array_parts(self):
        rng = _rng(3)
        lane = [rng.getrandbits(64) for _ in range(512)]
        arr = np.array(lane, dtype=np.uint64)
        # Scalar parts before, between and after array lanes.
        batch = hash64_batch(7, arr, 0x22, arr, 3)
        assert batch.tolist() == [hash64(7, v, 0x22, v, 3) for v in lane]

    def test_hash64_batch_folds_wide_scalar_parts(self):
        rng = _rng(4)
        lane = [rng.getrandbits(64) for _ in range(256)]
        wide = rng.getrandbits(128)  # folded 64 bits at a time
        arr = np.array(lane, dtype=np.uint64)
        assert hash64_batch(wide, arr).tolist() == [hash64(wide, v) for v in lane]
        assert hash64_batch(arr, wide).tolist() == [hash64(v, wide) for v in lane]

    def test_hash64_batch_scalar_only_matches(self):
        assert int(hash64_batch(1, 2, 3)) == hash64(1, 2, 3)

    def test_hash64_batch_rejects_negative(self):
        with pytest.raises(ValueError):
            hash64_batch(-1, np.zeros(2, dtype=np.uint64))

    def test_uniform_batch_bitwise(self):
        rng = _rng(5)
        lane = [rng.getrandbits(64) for _ in range(2048)]
        arr = np.array(lane, dtype=np.uint64)
        # float64 equality is exact: same int -> double conversion.
        assert uniform_batch(9, arr).tolist() == [uniform(9, v) for v in lane]

    @pytest.mark.parametrize("p", [-0.5, 0.0, 1e-12, 0.35, 0.999999, 1.0, 1.5])
    def test_coin_batch_all_probability_regimes(self, p):
        rng = _rng(6)
        lane = [rng.getrandbits(64) for _ in range(1024)]
        arr = np.array(lane, dtype=np.uint64)
        assert coin_batch(p, 11, arr).tolist() == [coin(p, 11, v) for v in lane]

    def test_coin_batch_per_element_probabilities(self):
        rng = _rng(7)
        lane = [rng.getrandbits(64) for _ in range(512)]
        probs = [rng.random() for _ in range(512)]
        arr = np.array(lane, dtype=np.uint64)
        parr = np.array(probs, dtype=np.float64)
        assert coin_batch(parr, 5, arr).tolist() == [
            coin(p, 5, v) for p, v in zip(probs, lane)
        ]


# -- nybble kernels ----------------------------------------------------------


class TestNybbleKernels:
    def _addresses(self, n: int = 500) -> list[int]:
        rng = _rng(8)
        out = [rng.getrandbits(128) for _ in range(n)]
        out += [0, 1, (1 << 128) - 1, 0x20010DB8 << 96]
        return out

    def test_to_nybble_matrix_row_for_row(self):
        addresses = self._addresses()
        packed = PackedAddresses.from_addresses(addresses)
        matrix = to_nybble_matrix(packed.prefix64, packed.iid64)
        assert matrix.shape == (len(addresses), ADDRESS_NYBBLES)
        for row, address in zip(matrix.tolist(), addresses):
            assert row == to_nybbles(address)

    def test_nybble_counts_matrix_matches_scalar(self):
        addresses = self._addresses()
        packed = PackedAddresses.from_addresses(addresses)
        counts = nybble_counts_matrix(to_nybble_matrix(packed.prefix64, packed.iid64))
        for index in range(ADDRESS_NYBBLES):
            assert counts[index].tolist() == nybble_counts(addresses, index)

    def test_common_prefix_len_matrix(self):
        a = 0x20010DB8_00000000_00000000_00000001
        b = 0x20010DB8_00000000_00000000_0000FFFF
        packed = PackedAddresses.from_addresses([a, b])
        matrix = to_nybble_matrix(packed.prefix64, packed.iid64)
        assert common_prefix_len_matrix(matrix) == common_prefix_len(a, b)
        same = PackedAddresses.from_addresses([a, a, a])
        assert (
            common_prefix_len_matrix(to_nybble_matrix(same.prefix64, same.iid64))
            == ADDRESS_NYBBLES
        )
        single = PackedAddresses.from_addresses([a])
        assert (
            common_prefix_len_matrix(to_nybble_matrix(single.prefix64, single.iid64))
            == ADDRESS_NYBBLES
        )

    def test_first_seen_values_matches_counter_order(self):
        from collections import Counter

        rng = _rng(9)
        column = np.array([rng.randrange(16) for _ in range(300)], dtype=np.uint8)
        expected = list(Counter(column.tolist()).keys())
        assert first_seen_values(column).tolist() == expected


# -- packed addresses --------------------------------------------------------


class TestPackedAddresses:
    def test_round_trip_and_iteration(self):
        rng = _rng(10)
        addresses = [rng.getrandbits(128) for _ in range(100)]
        packed = PackedAddresses.from_addresses(addresses)
        assert len(packed) == 100
        assert packed.to_addresses() == addresses
        assert list(packed) == addresses

    def test_scalar_paths_accept_packed_input(self, internet):
        # Iteration yields plain ints, so the scalar scan path works.
        targets = [region.address_of(1) for region in internet.regions[:80]]
        packed = PackedAddresses.from_addresses(targets)
        with use_vectorized(False):
            scanner = Scanner(internet)
            assert scanner.scan(packed, Port.ICMP).hits == scanner.scan(
                list(targets), Port.ICMP
            ).hits


# -- IID generation ----------------------------------------------------------


class TestGenerateIIDsParity:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_build_iids_identical_across_paths(self, kind):
        for count in (0, 1, 7, 64, 300):
            for salt in (1, 99, 0xDEADBEEF, 2**63 + 17):
                assert _build_iids(kind, count, salt, False) == _build_iids(
                    kind, count, salt, True
                ), (kind, count, salt)


# -- region respond chain ----------------------------------------------------


def _region_variants() -> list[Region]:
    profile = PortProfile(icmp=0.7, tcp80=0.5, udp53=0.0)
    variants = [
        dict(),
        dict(firewalled=True),
        dict(retired=True),
        dict(churn_rate=0.4),
        dict(aliased=True, alias_response_prob=0.35),
        dict(aliased=True, alias_response_prob=1.0),
        dict(aliased=True, alias_response_prob=0.0),
    ]
    return [
        Region(
            net64=0x2001_0DB8_0000_0000 + index,
            asn=64500,
            role=RegionRole.SERVER,
            pattern=PatternKind.RANDOM,
            density=150,
            profile=profile,
            salt=9000 + index,
            **kwargs,
        )
        for index, kwargs in enumerate(variants)
    ]


def _fresh(region: Region) -> Region:
    fields = (
        "net64",
        "asn",
        "role",
        "pattern",
        "density",
        "profile",
        "churn_rate",
        "retired",
        "firewalled",
        "aliased",
        "alias_response_prob",
        "salt",
    )
    return Region(**{name: getattr(region, name) for name in fields})


class TestRegionRespondParity:
    @pytest.mark.parametrize("epoch", [0, 1, 3])
    @pytest.mark.parametrize("attempt", [0, 2])
    def test_respond_batch_sweep(self, epoch, attempt):
        rng = _rng(11)
        for region in _region_variants():
            pool = [region.address_of(iid) for iid in sorted(region.active_iids())]
            pool += [region.address_of(rng.getrandbits(64)) for _ in range(150)]
            rng.shuffle(pool)
            for port in (Port.ICMP, Port.TCP80, Port.UDP53):
                scalar_region = _fresh(region)
                vector_region = _fresh(region)
                with use_vectorized(False):
                    scalar = scalar_region.respond_batch(pool, port, epoch, attempt)
                    singles = {
                        address
                        for address in pool
                        if scalar_region.responds(address, port, epoch, attempt)
                    }
                with use_vectorized(True):
                    vector = vector_region.respond_batch(pool, port, epoch, attempt)
                assert scalar == singles
                assert scalar == vector, (region.net64, port, epoch, attempt)

    def test_responsive_iids_vector_build_matches(self):
        for region in _region_variants():
            if region.aliased:
                continue
            for epoch in (0, 1, 2):
                with use_vectorized(False):
                    scalar = _fresh(region).responsive_iids(Port.ICMP, epoch)
                with use_vectorized(True):
                    vector = _fresh(region).responsive_iids(Port.ICMP, epoch)
                assert scalar == vector


# -- blocklist ---------------------------------------------------------------


class TestBlocklistMask:
    def test_blocked_mask_matches_is_blocked(self):
        rng = _rng(12)
        blocklist = Blocklist()
        blocklist.add(Prefix.parse("2001:db8::/32"))
        blocklist.add(Prefix(0x3FFF << 112, 64))
        blocklist.add(Prefix(0x2001_0DB8_0000_1234 << 64, 96))
        blocklist.add(Prefix((0x2001_0DB8_0000_5678 << 64) | (0xABCD << 48), 128))
        pool = [rng.getrandbits(128) for _ in range(500)]
        for prefix in blocklist.prefixes():
            base = prefix.value
            pool.append(base)
            pool.append(base | ((1 << (128 - prefix.length)) - 1))
            if prefix.length:
                pool.append(base ^ (1 << (128 - prefix.length)))  # just outside
        packed = PackedAddresses.from_addresses(pool)
        mask = blocklist.blocked_mask(packed.prefix64, packed.iid64)
        assert mask.tolist() == [blocklist.is_blocked(address) for address in pool]


# -- probe chain end to end --------------------------------------------------


class TestProbeChainParity:
    def _pool(self, internet, rng, size=4000):
        pool = []
        regions = internet.regions
        for _ in range(size // 2):
            region = regions[rng.randrange(len(regions))]
            pool.append((region.net64 << 64) | rng.getrandbits(64))
        responsive = list(internet.iter_responsive(Port.ICMP))
        for _ in range(size // 4):
            pool.append(responsive[rng.randrange(len(responsive))])
        for _ in range(size // 4):
            pool.append(rng.getrandbits(128))
        pool += pool[: size // 8]  # duplicates must not change anything
        rng.shuffle(pool)
        return pool

    def test_probe_batch_matches_scalar_and_probe(self, tiny_config):
        rng = _rng(13)
        with use_vectorized(False):
            scalar_net = SimulatedInternet(tiny_config)
            pool = self._pool(scalar_net, rng)
            scalar = scalar_net.probe_batch(pool, Port.ICMP)
            singles = {a for a in pool if scalar_net.probe(a, Port.ICMP)}
        with use_vectorized(True):
            vector_net = SimulatedInternet(tiny_config)
            vector = vector_net.probe_batch(pool, Port.ICMP)
            packed = vector_net.probe_batch(
                PackedAddresses.from_addresses(pool), Port.ICMP
            )
        assert scalar == singles
        assert scalar == vector == packed

    @pytest.mark.parametrize("classify_negative", [True, False])
    def test_scan_results_and_stats_identical(self, tiny_config, classify_negative):
        rng = _rng(14)
        blocklist = Blocklist()
        with use_vectorized(False):
            scalar_net = SimulatedInternet(tiny_config)
            blocklist.add(scalar_net.regions[3].prefix)
            blocklist.add(Prefix(scalar_net.regions[11].net64 << 64, 80))
            pool = self._pool(scalar_net, rng)
            scalar_scanner = Scanner(
                scalar_net, blocklist=blocklist, classify_negative=classify_negative
            )
            scalar = scalar_scanner.scan(list(pool), Port.ICMP)
        with use_vectorized(True):
            vector_net = SimulatedInternet(tiny_config)
            vector_scanner = Scanner(
                vector_net, blocklist=blocklist, classify_negative=classify_negative
            )
            vector = vector_scanner.scan(list(pool), Port.ICMP)
            packed = Scanner(
                vector_net, blocklist=blocklist, classify_negative=classify_negative
            ).scan(PackedAddresses.from_addresses(pool), Port.ICMP)
        for other in (vector, packed):
            assert scalar.hits == other.hits
            assert scalar.stats.responses == other.stats.responses
            assert scalar.stats.probes_sent == other.stats.probes_sent
            assert scalar.stats.targets_blocked == other.stats.targets_blocked
            assert scalar.stats.virtual_duration == other.stats.virtual_duration

    def test_scan_telemetry_snapshot_identical(self, tiny_config):
        from repro.telemetry import MemorySink, Telemetry, use_telemetry

        rng = _rng(15)

        def run(vectorized: bool):
            telemetry = Telemetry([MemorySink()])
            with use_vectorized(vectorized), use_telemetry(telemetry):
                net = SimulatedInternet(tiny_config)
                scanner = Scanner(net)
                pool = self._pool(net, rng=_rng(15))
                for port in ALL_PORTS:
                    scanner.scan(list(pool), port)
                return telemetry.snapshot()

        assert run(False) == run(True)


# -- full grid ---------------------------------------------------------------


class TestGridParity:
    def test_small_grid_identical_vector_on_off(self, tiny_config):
        from repro.experiments import ExecutionPolicy, GridSpec, Study, run_grid

        def run(vectorized: bool):
            with use_vectorized(vectorized):
                study = Study(
                    internet=SimulatedInternet(tiny_config),
                    budget=600,
                    round_size=200,
                )
                spec = GridSpec(
                    datasets=(study.constructions.all_active,),
                    tga_names=("det", "eip"),
                    ports=(Port.ICMP,),
                )
                return run_grid(study, spec)

        scalar = run(False)
        vector = run(True)
        assert scalar.runs.keys() == vector.runs.keys()
        for key in scalar.runs:
            a, b = scalar.runs[key], vector.runs[key]
            assert a.clean_hits == b.clean_hits, key
            assert a.aliased_hits == b.aliased_hits, key
            assert a.generated == b.generated, key
            assert a.probes_sent == b.probes_sent, key
            assert a.metrics == b.metrics, key
            assert a.round_history == b.round_history, key

    def test_execution_policy_vectorized_toggle(self, tiny_config):
        from repro.experiments import ExecutionPolicy, GridSpec, Study, run_grid

        def run(policy):
            study = Study(
                internet=SimulatedInternet(tiny_config), budget=400, round_size=200
            )
            spec = GridSpec(
                datasets=(study.constructions.all_active,),
                tga_names=("det",),
                ports=(Port.ICMP,),
            )
            return run_grid(study, spec, policy=policy)

        on = run(ExecutionPolicy(vectorized=True))
        off = run(ExecutionPolicy(vectorized=False))
        default = run(None)
        for key in on.runs:
            assert on.runs[key].clean_hits == off.runs[key].clean_hits
            assert on.runs[key].metrics == off.runs[key].metrics
            assert default.runs[key].clean_hits == on.runs[key].clean_hits

    def test_vector_enabled_reflects_policy_scope(self):
        baseline = vector_enabled()
        with use_vectorized(False):
            assert not vector_enabled()
            with use_vectorized(True):
                assert vector_enabled()
            assert not vector_enabled()
        assert vector_enabled() == baseline


# -- TGA histogram routing ---------------------------------------------------


class TestTgaParity:
    def _seeds(self) -> list[int]:
        rng = _rng(16)
        seeds = []
        for _ in range(30):
            net = (0x20010DB8 << 96) | (rng.getrandbits(8) << 64)
            for index in range(rng.randrange(4, 90)):
                style = rng.random()
                if style < 0.4:
                    seeds.append(net | (index + 1))
                elif style < 0.7:
                    seeds.append(net | (0xCAFE0000 + rng.getrandbits(8)))
                else:
                    seeds.append(net | rng.getrandbits(64))
        seeds = list(dict.fromkeys(seeds))
        rng.shuffle(seeds)
        return seeds

    def test_entropy_profile_bitwise(self):
        from repro.tga.entropy_ip import _entropy_profile, _nybble_entropy

        seeds = self._seeds()
        expected = [_nybble_entropy(seeds, dim) for dim in range(ADDRESS_NYBBLES)]
        with use_vectorized(False):
            assert _entropy_profile(seeds) == expected
        with use_vectorized(True):
            assert _entropy_profile(seeds) == expected

    @pytest.mark.parametrize("strategy", ["leftmost", "entropy"])
    def test_space_tree_structurally_identical(self, strategy):
        from repro.tga.spacetree import SpaceTree

        seeds = self._seeds()
        with use_vectorized(False):
            scalar_tree = SpaceTree(list(seeds), strategy=strategy)
        with use_vectorized(True):
            vector_tree = SpaceTree(list(seeds), strategy=strategy)
        assert len(scalar_tree.leaves) == len(vector_tree.leaves)
        for a, b in zip(scalar_tree.leaves, vector_tree.leaves):
            assert a.__dict__ == b.__dict__
