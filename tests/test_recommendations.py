"""Tests for the RQ5 recommended pipeline."""

import pytest

from repro.experiments import (
    RECOMMENDED_ENSEMBLE,
    recommended_seeds,
    run_recommended_pipeline,
)
from repro.internet import Port


class TestRecommendedSeeds:
    def test_icmp_uses_port_specific(self, study):
        seeds = recommended_seeds(study, Port.ICMP)
        assert seeds.addresses == study.constructions.port_specific(Port.ICMP).addresses

    def test_application_blends_icmp(self, study):
        seeds = recommended_seeds(study, Port.TCP443)
        tcp = study.constructions.port_specific(Port.TCP443).addresses
        icmp = study.constructions.activity[Port.ICMP]
        assert seeds.addresses == tcp | icmp

    def test_no_blend(self, study):
        seeds = recommended_seeds(study, Port.TCP443, icmp_blend=0.0)
        assert seeds.addresses == study.constructions.port_specific(Port.TCP443).addresses

    def test_partial_blend_between(self, study):
        none = recommended_seeds(study, Port.TCP443, icmp_blend=0.0)
        half = recommended_seeds(study, Port.TCP443, icmp_blend=0.5)
        full = recommended_seeds(study, Port.TCP443, icmp_blend=1.0)
        assert len(none) <= len(half) <= len(full)


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self, study):
        return run_recommended_pipeline(
            study, Port.TCP443, tga_names=("6tree", "6gen"), budget=600
        )

    def test_runs_all_members(self, result):
        assert set(result.runs) == {"6tree", "6gen"}

    def test_ensemble_superset(self, result):
        for run in result.runs.values():
            assert set(run.clean_hits) <= result.ensemble_hits
            assert set(run.active_ases) <= result.ensemble_ases

    def test_ensemble_gain_at_least_one(self, result):
        assert result.ensemble_gain() >= 1.0

    def test_best_single_valid(self, result):
        assert result.best_single() in result.runs

    def test_contributions_cover_union(self, result):
        steps = result.hit_contributions()
        assert steps[-1].cumulative == len(result.ensemble_hits)
        as_steps = result.as_contributions()
        assert as_steps[-1].cumulative == len(result.ensemble_ases)

    def test_default_ensemble_sane(self):
        assert "6sense" in RECOMMENDED_ENSEMBLE
        assert "eip" not in RECOMMENDED_ENSEMBLE
        assert "6scan" not in RECOMMENDED_ENSEMBLE  # redundant with 6tree
