"""Tests for repro.analysis.populations."""

import pytest

from repro.analysis import population_breakdown, population_shift
from repro.asdb import OrgType
from repro.internet import Port, RegionRole


class TestBreakdown:
    def test_counts_sum(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:60]]
        breakdown = population_breakdown(addresses, internet)
        assert breakdown.total == 60
        assert sum(breakdown.by_org.values()) == 60
        assert sum(breakdown.by_role.values()) == 60

    def test_unrouted_excluded(self, internet):
        breakdown = population_breakdown([0x3FFF << 112], internet)
        assert breakdown.total == 0

    def test_shares(self, internet):
        region = internet.regions[0]
        breakdown = population_breakdown(
            [region.address_of(i) for i in range(4)], internet
        )
        assert breakdown.role_share(region.role) == pytest.approx(1.0)
        org = internet.registry.info(region.asn).org_type
        assert breakdown.org_share(org) == pytest.approx(1.0)
        assert breakdown.dominant_org() is org

    def test_empty(self, internet):
        breakdown = population_breakdown([], internet)
        assert breakdown.total == 0
        assert breakdown.dominant_org() is None
        assert breakdown.org_share(OrgType.CLOUD) == 0.0

    def test_as_rows(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:20]]
        rows = population_breakdown(addresses, internet).as_rows()
        assert all(0 <= row["share"] <= 1 for row in rows)
        assert {row["axis"] for row in rows} == {"org", "role"}


class TestShift:
    def test_shift_between_runs(self, study, internet):
        """Targeted datacenter seeds shift the discovered population
        toward server roles compared to the All Active baseline."""
        from repro.experiments import targeted_seeds

        baseline = study.run("6tree", study.constructions.all_active, Port.ICMP)
        dc_seeds = targeted_seeds(
            study, (OrgType.CLOUD, OrgType.HOSTING, OrgType.CDN)
        )
        targeted = study.run("6tree", dc_seeds, Port.ICMP, budget=600)
        shift = population_shift(
            population_breakdown(baseline.clean_hits, internet),
            population_breakdown(targeted.clean_hits, internet),
        )
        assert shift.get(f"role:{RegionRole.SERVER.value}", 0.0) >= 0.0

    def test_zero_shift_for_identical(self, internet):
        addresses = [r.address_of(1) for r in internet.regions[:30]]
        breakdown = population_breakdown(addresses, internet)
        shift = population_shift(breakdown, breakdown)
        assert all(abs(value) < 1e-12 for value in shift.values())

    def test_shift_bounds(self, internet):
        a = population_breakdown([internet.regions[0].address_of(1)], internet)
        b = population_breakdown([internet.regions[-1].address_of(1)], internet)
        for value in population_shift(a, b).values():
            assert -1.0 <= value <= 1.0
