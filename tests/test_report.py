"""Tests for the one-shot markdown study report."""

import pytest

from repro.experiments import Study
from repro.reporting import generate_report


@pytest.fixture(scope="module")
def report_text(internet):
    study = Study(internet=internet, budget=500, round_size=200)
    return generate_report(study)


class TestGenerateReport:
    def test_title_and_sections(self, report_text):
        assert report_text.startswith("# Seeds of Scanning")
        for heading in (
            "## Simulated world",
            "## Seed sources",
            "## RQ1.a",
            "## RQ1.b",
            "## RQ2",
            "## RQ4",
            "## RQ5",
        ):
            assert heading in report_text, heading

    def test_markdown_tables_present(self, report_text):
        # Every section renders at least one GitHub-flavoured table.
        assert report_text.count("| --- |") >= 5

    def test_all_sources_listed(self, report_text):
        from repro.datasets import SOURCE_ORDER

        for source in SOURCE_ORDER:
            assert source in report_text

    def test_all_tgas_listed(self, report_text):
        from repro.tga import ALL_TGA_NAMES

        for tga in ALL_TGA_NAMES:
            assert tga in report_text

    def test_ensemble_gain_mentioned(self, report_text):
        assert "Ensemble gain" in report_text

    def test_custom_title(self, internet):
        study = Study(internet=internet, budget=400, round_size=200)
        text = generate_report(study, title="My custom study")
        assert text.startswith("# My custom study")

    def test_deterministic(self, internet):
        study_a = Study(internet=internet, budget=400, round_size=200)
        study_b = Study(internet=internet, budget=400, round_size=200)
        assert generate_report(study_a) == generate_report(study_b)
