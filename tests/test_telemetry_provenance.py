"""Tests for repro.telemetry.provenance: manifests, digests, sidecars."""

import json

import pytest

from repro import __version__
from repro.experiments import Study
from repro.internet import InternetConfig
from repro.telemetry import (
    RunManifest,
    config_digest,
    manifest_sidecar_path,
    snapshot_digest,
    write_manifest,
)


def make_manifest(**overrides) -> RunManifest:
    fields = dict(
        master_seed=7,
        scale="tiny",
        budget=500,
        config_hash=config_digest(InternetConfig.tiny(master_seed=7)),
        ports=("icmp",),
        workers=2,
        command="run",
        version=__version__,
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestDigests:
    def test_config_digest_is_stable(self):
        a = config_digest(InternetConfig.tiny(master_seed=7))
        b = config_digest(InternetConfig.tiny(master_seed=7))
        assert a == b
        assert a.startswith("sha256:")

    def test_config_digest_sees_every_knob(self):
        base = config_digest(InternetConfig.tiny(master_seed=7))
        assert config_digest(InternetConfig.tiny(master_seed=8)) != base
        assert (
            config_digest(InternetConfig.tiny(master_seed=7).with_seed(7)) == base
        )

    def test_snapshot_digest_orders_keys(self):
        assert snapshot_digest({"a": 1, "b": 2}) == snapshot_digest({"b": 2, "a": 1})
        assert snapshot_digest({"a": 1}) != snapshot_digest({"a": 2})


class TestRunManifest:
    def test_dict_roundtrip(self):
        manifest = make_manifest()
        again = RunManifest.from_dict(manifest.to_dict())
        assert again == manifest

    def test_event_shape(self):
        event = make_manifest().event()
        assert event["type"] == "manifest"
        assert event["master_seed"] == 7
        assert event["scale"] == "tiny"
        assert event["config_hash"].startswith("sha256:")
        # No wall-clock anywhere: manifests must not break determinism.
        assert not any("time" in key or "date" in key for key in event)

    def test_with_snapshot_fills_digest(self):
        manifest = make_manifest()
        assert manifest.snapshot_digest is None
        assert "snapshot_digest" not in manifest.to_dict()
        stamped = manifest.with_snapshot({"counters": {"x": 1}})
        assert stamped.snapshot_digest.startswith("sha256:")
        assert stamped.to_dict()["snapshot_digest"] == stamped.snapshot_digest

    def test_from_study_captures_world(self):
        study = Study(config=InternetConfig.tiny(master_seed=9), budget=777)
        manifest = RunManifest.from_study(
            study, scale="tiny", ports=("icmp", "tcp80"), workers=4, command="rq2"
        )
        assert manifest.master_seed == 9
        assert manifest.budget == 777
        assert manifest.ports == ("icmp", "tcp80")
        assert manifest.workers == 4
        assert manifest.version == __version__
        assert manifest.config_hash == config_digest(study.internet.config)

    def test_from_config_matches_from_study(self):
        config = InternetConfig.tiny(master_seed=9)
        study = Study(config=config, budget=777)
        assert (
            RunManifest.from_config(config, scale="tiny", budget=777).config_hash
            == RunManifest.from_study(study, scale="tiny").config_hash
        )


class TestSidecars:
    def test_sidecar_path_replaces_extension(self):
        assert manifest_sidecar_path("out/results.json").name == "results.manifest.json"
        assert manifest_sidecar_path("results.csv").name == "results.manifest.json"

    def test_write_manifest_roundtrip(self, tmp_path):
        artifact = tmp_path / "rows.json"
        artifact.write_text("[]", encoding="utf-8")
        sidecar = write_manifest(artifact, make_manifest())
        assert sidecar == tmp_path / "rows.manifest.json"
        data = json.loads(sidecar.read_text(encoding="utf-8"))
        assert RunManifest.from_dict(data) == make_manifest()

    def test_manifest_is_frozen(self):
        with pytest.raises(AttributeError):
            make_manifest().budget = 1
