"""Tests for repro.reporting.markdown."""

from repro.reporting import markdown_table, render_heatmap


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_right_alignment(self):
        text = markdown_table(["name", "count"], [["x", 5]], align_right=[1])
        assert text.splitlines()[1] == "| --- | ---: |"

    def test_empty_rows(self):
        text = markdown_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestHeatmap:
    def test_shading_monotone(self):
        matrix = {
            "low": {"low": 0.0, "high": 10.0},
            "high": {"low": 90.0, "high": 100.0},
        }
        text = render_heatmap(matrix)
        lines = text.splitlines()
        low_row = next(line for line in lines if line.startswith("low "))
        high_row = next(line for line in lines if line.startswith("high"))
        # The 100% cell must use the darkest shade; the 0% cell a space.
        assert "█" in high_row
        assert "█" not in low_row

    def test_title_and_legend(self):
        matrix = {"a": {"a": 100.0}}
        text = render_heatmap(matrix, title="overlap")
        assert text.startswith("overlap")
        assert "legend:" in text

    def test_works_on_real_overlap_matrix(self, collection, internet):
        from repro.datasets import overlap_by_ip

        matrix = overlap_by_ip(collection)
        text = render_heatmap(matrix.cells, title="Figure 1")
        assert len(text.splitlines()) == len(matrix.names) + 3

    def test_values_clamped(self):
        matrix = {"a": {"a": 250.0, "b": -5.0}, "b": {"a": 0.0, "b": 0.0}}
        text = render_heatmap(matrix)  # must not raise
        assert "█" in text
