"""Tests for repro.dealias.prefixset."""

from repro.addr import Prefix, parse_address
from repro.dealias import AliasPrefixSet


class TestAliasPrefixSet:
    def test_empty(self):
        aliases = AliasPrefixSet()
        assert len(aliases) == 0
        assert not aliases.covers(parse_address("2001:db8::1"))

    def test_covers(self):
        aliases = AliasPrefixSet([Prefix.parse("2001:db8::/64")])
        assert aliases.covers(parse_address("2001:db8::1234"))
        assert not aliases.covers(parse_address("2001:db8:0:1::1"))

    def test_contains_operator(self):
        aliases = AliasPrefixSet([Prefix.parse("2001:db8::/64")])
        assert parse_address("2001:db8::1") in aliases

    def test_mixed_lengths(self):
        aliases = AliasPrefixSet(
            [Prefix.parse("2001:db8::/64"), Prefix.parse("2600:9000::/48")]
        )
        assert aliases.covers(parse_address("2600:9000:0:ffff::1"))
        assert not aliases.covers(parse_address("2600:9001::1"))

    def test_idempotent_add(self):
        aliases = AliasPrefixSet()
        aliases.add(Prefix.parse("2001:db8::/96"))
        aliases.add(Prefix.parse("2001:db8::/96"))
        assert len(aliases) == 1

    def test_partition(self):
        aliases = AliasPrefixSet([Prefix.parse("2001:db8::/64")])
        inside = parse_address("2001:db8::42")
        outside = parse_address("2400::1")
        clean, aliased = aliases.partition([inside, outside])
        assert clean == {outside}
        assert aliased == {inside}

    def test_partition_empty(self):
        clean, aliased = AliasPrefixSet().partition([])
        assert clean == set() and aliased == set()

    def test_merged_with(self):
        a = AliasPrefixSet([Prefix.parse("2001:db8::/64")])
        b = AliasPrefixSet([Prefix.parse("2400::/64")])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.covers(parse_address("2001:db8::1"))
        assert merged.covers(parse_address("2400::1"))
        # Originals untouched.
        assert len(a) == 1 and len(b) == 1

    def test_prefixes_sorted(self):
        aliases = AliasPrefixSet(
            [Prefix.parse("2400::/64"), Prefix.parse("2001:db8::/64")]
        )
        listed = aliases.prefixes()
        assert listed == sorted(listed)
