"""Round-trip fuzz tests for repro.experiments.store.

Hand-rolled property testing (no hypothesis dependency): a seeded
``random.Random`` builds arbitrary :class:`RunResult` objects —
including empty address sets, 128-bit extremes and non-ASCII dataset
names — and every one must survive ``result_to_dict``/
``result_from_dict`` and a full ``dump_results``/``load_results`` disk
round trip exactly.
"""

import random

import pytest

from repro.experiments import RunResult
from repro.experiments.store import (
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)
from repro.internet import ALL_PORTS
from repro.metrics import MetricSet

MAX_ADDRESS = (1 << 128) - 1

#: Adversarial dataset names: empty-ish, non-ASCII, JSON-hostile.
NASTY_NAMES = (
    "all_active",
    "seed café",
    "データセット",
    "zmap—v6 (new york)",
    'quote"backslash\\name',
    "newline\nname",
    "🌱 seeds",
    " ",
)


def random_addresses(rng: random.Random) -> frozenset[int]:
    count = rng.choice((0, 0, 1, 2, 5, 17))
    picks = set()
    for _ in range(count):
        if rng.random() < 0.2:
            picks.add(rng.choice((0, 1, MAX_ADDRESS, MAX_ADDRESS - 1)))
        else:
            picks.add(rng.getrandbits(128))
    return frozenset(picks)


def random_result(rng: random.Random) -> RunResult:
    hits = rng.randrange(0, 1_000)
    rounds = rng.randrange(0, 6)
    return RunResult(
        tga_name=rng.choice(("6tree", "6gen", "eip", "entropy-ip")),
        dataset_name=rng.choice(NASTY_NAMES),
        port=rng.choice(ALL_PORTS),
        budget=rng.choice((0, 1, 500, 10**9)),
        generated=rng.randrange(0, 10**6),
        clean_hits=random_addresses(rng),
        aliased_hits=random_addresses(rng),
        active_ases=frozenset(
            rng.randrange(1, 2**32) for _ in range(rng.randrange(0, 8))
        ),
        metrics=MetricSet(
            hits=hits,
            ases=rng.randrange(0, 100),
            aliases=rng.randrange(0, 100),
        ),
        probes_sent=rng.randrange(0, 10**6),
        rounds=rounds,
        round_history=tuple(
            (rng.randrange(0, 10**6), rng.randrange(0, 10**4))
            for _ in range(rounds)
        ),
    )


class TestResultDictRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_results_round_trip(self, seed):
        rng = random.Random(seed)
        result = random_result(rng)
        assert result_from_dict(result_to_dict(result)) == result

    def test_empty_sets_round_trip(self):
        rng = random.Random(0)
        result = random_result(rng)
        empty = RunResult(
            tga_name=result.tga_name,
            dataset_name="",
            port=result.port,
            budget=0,
            generated=0,
            clean_hits=frozenset(),
            aliased_hits=frozenset(),
            active_ases=frozenset(),
            metrics=MetricSet(hits=0, ases=0, aliases=0),
        )
        assert result_from_dict(result_to_dict(empty)) == empty

    def test_dict_form_is_json_safe(self):
        import json

        rng = random.Random(7)
        for _ in range(20):
            data = result_to_dict(random_result(rng))
            assert json.loads(json.dumps(data)) == data

    def test_address_extremes_survive_hex_encoding(self):
        rng = random.Random(1)
        base = random_result(rng)
        result = RunResult(
            tga_name=base.tga_name,
            dataset_name=base.dataset_name,
            port=base.port,
            budget=base.budget,
            generated=base.generated,
            clean_hits=frozenset((0, 1, MAX_ADDRESS)),
            aliased_hits=frozenset((MAX_ADDRESS - 1,)),
            active_ases=base.active_ases,
            metrics=base.metrics,
        )
        back = result_from_dict(result_to_dict(result))
        assert back.clean_hits == result.clean_hits
        assert back.aliased_hits == result.aliased_hits


class TestDiskRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_dump_load_round_trip(self, seed, tmp_path):
        rng = random.Random(seed)
        results = [random_result(rng) for _ in range(rng.randrange(0, 12))]
        path = tmp_path / "checkpoint.json"
        assert dump_results(path, results) == len(results)
        assert load_results(path) == results

    def test_empty_checkpoint_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        assert dump_results(path, []) == 0
        assert load_results(path) == []

    def test_non_ascii_names_survive_disk(self, tmp_path):
        rng = random.Random(3)
        results = []
        for name in NASTY_NAMES:
            base = random_result(rng)
            results.append(
                RunResult(
                    tga_name=base.tga_name,
                    dataset_name=name,
                    port=base.port,
                    budget=base.budget,
                    generated=base.generated,
                    clean_hits=base.clean_hits,
                    aliased_hits=base.aliased_hits,
                    active_ases=base.active_ases,
                    metrics=base.metrics,
                )
            )
        path = tmp_path / "names.json"
        dump_results(path, results)
        loaded = load_results(path)
        assert [r.dataset_name for r in loaded] == list(NASTY_NAMES)
        assert loaded == results

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999, "results": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_results(path)
